"""FLV class 3 (Algorithm 4) — including the paper's Figure 3 scenario."""

import pytest

from repro.core.flv_class3 import (
    FLVClass3,
    class3_min_processes,
    class3_min_threshold,
)
from repro.core.types import FaultModel
from repro.utils.sentinels import ANY_VALUE, NULL_VALUE
from tests.conftest import sel_msg


@pytest.fixture
def fig3_flv():
    """Figure 3 parameters: n=4, b=1, f=0, TD=3 (slack n−TD+b = 2)."""
    return FLVClass3(FaultModel(n=4, b=1, f=0), threshold=3)


def history_with(*pairs):
    return frozenset(pairs)


class TestFigure3Scenario:
    """The exact scenario illustrated in Figure 3 of the paper."""

    def test_locked_value_certified_by_histories(self, fig3_flv):
        phi1 = 2
        # TD − b = 2 honest validated (v1, φ1); their histories certify it.
        m1 = sel_msg("v1", ts=phi1, history=history_with(("v1", 0), ("v1", phi1)))
        m2 = sel_msg("v1", ts=phi1, history=history_with(("v1", 0), ("v1", phi1)))
        # One honest lags with (v2, φ2' < φ1).
        m3 = sel_msg("v2", ts=1, history=history_with(("v2", 0), ("v2", 1)))
        # The Byzantine forges (v2, φ2 > φ1) with a fabricated history.
        m4 = sel_msg("v2", ts=9, history=history_with(("v2", 0), ("v2", 9)))
        assert fig3_flv.evaluate([m1, m2, m3, m4]) == "v1"

    def test_forged_history_lacks_support(self, fig3_flv):
        # The Byzantine (v2, 9) pair appears in only b = 1 history,
        # so line 2's "> b" filter rejects it even though it dominates line 1.
        phi1 = 2
        m1 = sel_msg("v1", ts=phi1, history=history_with(("v1", phi1)))
        m2 = sel_msg("v1", ts=phi1, history=history_with(("v1", phi1)))
        m4 = sel_msg("v2", ts=9, history=history_with(("v2", 9)))
        # With only 3 messages the safe answers are v1 or null — the forged
        # v2 (certified by a single history) must never be returned.
        assert fig3_flv.evaluate([m1, m2, m4]) in ("v1", NULL_VALUE)

    def test_unanimity_branch(self, fig3_flv):
        # All honest proposed v (ts = 0 everywhere); a Byzantine pushes w.
        messages = [sel_msg("v", ts=0)] * 3 + [sel_msg("w", ts=0)]
        assert fig3_flv.evaluate(messages) == "v"

    def test_fresh_system_no_majority_returns_any(self, fig3_flv):
        messages = [
            sel_msg("a", ts=0),
            sel_msg("b", ts=0),
            sel_msg("c", ts=0),
            sel_msg("d", ts=0),
        ]
        assert fig3_flv.evaluate(messages) is ANY_VALUE

    def test_insufficient_vector_returns_null(self, fig3_flv):
        messages = [sel_msg("a", ts=1, history=history_with(("a", 1)))]
        assert fig3_flv.evaluate(messages) is NULL_VALUE


class TestUnanimityToggle:
    def test_pbft_mode_skips_majority_branch(self):
        model = FaultModel(n=4, b=1, f=0)
        flv = FLVClass3(model, threshold=3, ensure_unanimity=False)
        with_unanimity = FLVClass3(model, threshold=3)
        # Majority v at ts 0, histories empty (no certified pairs): the
        # unanimity branch is the only thing separating v from ?.
        messages = [sel_msg("v", ts=0, history=frozenset())] * 3 + [
            sel_msg("w", ts=0, history=frozenset())
        ]
        assert flv.evaluate(messages) is ANY_VALUE
        assert with_unanimity.evaluate(messages) == "v"

    def test_flag_exposed(self):
        model = FaultModel(4, 1, 0)
        assert FLVClass3(model, 3).ensure_unanimity
        assert not FLVClass3(model, 3, ensure_unanimity=False).ensure_unanimity


class TestMultipleCorrectVotes:
    def test_two_certified_votes_return_any(self, fig3_flv):
        # Construct a (non-reachable under a locked value) vector in which
        # two different pairs both have > b history support: FLV must return
        # ? (line 6), never silently pick one.
        certs = history_with(("a", 5), ("b", 5))
        m1 = sel_msg("a", ts=5, history=certs)
        m2 = sel_msg("a", ts=0, history=certs)
        m3 = sel_msg("b", ts=5, history=certs)
        m4 = sel_msg("b", ts=0, history=certs)
        assert fig3_flv.evaluate([m1, m2, m3, m4]) is ANY_VALUE


class TestBounds:
    def test_min_threshold(self):
        assert class3_min_threshold(FaultModel(4, 1, 0)) == 3
        assert class3_min_threshold(FaultModel(3, 0, 1)) == 2

    def test_min_processes(self):
        assert class3_min_processes(b=1, f=0) == 4
        assert class3_min_processes(b=0, f=1) == 3
        assert class3_min_processes(b=2, f=2) == 11

    def test_liveness_bound(self):
        model = FaultModel(4, 1, 0)
        assert FLVClass3(model, 3).satisfies_liveness_bound()
        assert not FLVClass3(model, 2).satisfies_liveness_bound()


class TestRequirements:
    def test_uses_everything_and_needs_strong_selector(self, fig3_flv):
        req = fig3_flv.requirements
        assert req.uses_ts
        assert req.uses_history
        assert req.needs_strong_selector_validity
        assert not req.supports_prel_liveness

    def test_prel_liveness_counterexample(self, fig3_flv):
        """Section 6: class 3 fails the strengthened FLV-liveness.

        A vector of n − b − f messages in which a validated pair lacks
        history support (its selectors are outside the vector) yields null.
        """
        phi = 2
        m1 = sel_msg("v", ts=phi, history=history_with(("v", phi)))
        m2 = sel_msg("w", ts=1, history=history_with(("w", 1)))
        m3 = sel_msg("w", ts=1, history=history_with(("w", 1)))
        # 3 = n − b − f messages, but no pair reaches > b history support
        # while the ts = 0 branch does not fire either.
        assert fig3_flv.evaluate([m1, m2, m3]) is NULL_VALUE
