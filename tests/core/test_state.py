"""ConsensusState transitions (lines 2-4, 13-14, 23-26 of Algorithm 1)."""

from repro.core.state import ConsensusState


def test_initial_state():
    state = ConsensusState.initial("v")
    assert state.vote == "v"
    assert state.ts == 0
    assert state.history == {("v", 0)}
    assert not state.has_decided


def test_record_selection_appends_history():
    state = ConsensusState.initial("v")
    state.record_selection("w", 2)
    assert state.vote == "w"
    assert ("w", 2) in state.history
    assert state.ts == 0  # selection never touches ts


def test_record_validation_bumps_ts():
    state = ConsensusState.initial("v")
    state.record_selection("w", 1)
    state.record_validation("w", 1)
    assert state.vote == "w"
    assert state.ts == 1
    # Paper pseudocode: validation does NOT log to the history.
    assert ("w", 1) in state.history  # from the selection, not the validation


def test_record_validation_history_ablation():
    state = ConsensusState.initial("v")
    state.record_validation("w", 1, also_log_history=True)
    assert ("w", 1) in state.history


def test_validation_without_history_entry_paper_mode():
    state = ConsensusState.initial("v")
    state.record_validation("w", 1)  # w was never selected by this process
    assert ("w", 1) not in state.history


def test_revert_vote_restores_ts_value():
    state = ConsensusState.initial("v")
    state.record_selection("w", 1)
    state.record_validation("w", 1)
    state.record_selection("x", 2)  # selected but not validated in phase 2
    state.revert_vote()  # line 26
    assert state.vote == "w"
    assert state.ts == 1


def test_revert_vote_no_matching_pair_keeps_vote():
    state = ConsensusState.initial("v")
    # Validate a value this process never selected: no (w, 1) in history.
    state.record_validation("w", 1)
    state.record_selection("x", 2)
    state.revert_vote()
    # Ambiguity resolved by keeping the current vote (DESIGN.md §4).
    assert state.vote == "x"


def test_revert_vote_at_ts_zero():
    state = ConsensusState.initial("v")
    state.record_selection("w", 1)
    state.revert_vote()
    assert state.vote == "v"  # (v, 0) is the unique ts=0 pair


def test_decision_is_stable():
    state = ConsensusState.initial("v")
    state.record_decision("w", 3)
    state.record_decision("x", 4)  # ignored: decisions are final
    assert state.decided == "w"
    assert state.decided_phase == 3


def test_snapshot_is_immutable_copy():
    state = ConsensusState.initial("v")
    vote, ts, history = state.snapshot()
    state.record_selection("w", 1)
    assert ("w", 1) not in history


def test_footprint():
    state = ConsensusState.initial("v")
    assert state.footprint(False, False) == ("vote",)
    assert state.footprint(True, False) == ("vote", "ts")
    assert state.footprint(True, True) == ("vote", "ts", "history")
