"""FaultModel arithmetic and defensive message parsing."""

import pytest

from repro.core.types import (
    DecisionMessage,
    FaultModel,
    Flag,
    SelectionMessage,
    ValidationMessage,
    coerce_decision_message,
    coerce_history,
    coerce_selection_message,
    coerce_validation_message,
)


class TestFaultModel:
    def test_basic_properties(self):
        model = FaultModel(n=7, b=1, f=2)
        assert list(model.processes) == list(range(7))
        assert model.max_decision_threshold == 4

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            FaultModel(n=0)

    def test_rejects_negative_faults(self):
        with pytest.raises(ValueError):
            FaultModel(n=3, b=-1)
        with pytest.raises(ValueError):
            FaultModel(n=3, f=-1)

    def test_rejects_all_faulty(self):
        with pytest.raises(ValueError):
            FaultModel(n=3, b=2, f=1)

    def test_quorum_exceeds_half_plus_b(self):
        model = FaultModel(n=4, b=1)
        # (n + b)/2 = 2.5 → need count ≥ 3.
        assert not model.quorum_exceeds_half_plus_b(2)
        assert model.quorum_exceeds_half_plus_b(3)

    def test_describe(self):
        assert FaultModel(4, 1, 0).describe() == "n=4, b=1, f=0"


class TestFlag:
    def test_validation_round_requirement(self):
        assert Flag.CURRENT_PHASE.needs_validation_round
        assert not Flag.ANY.needs_validation_round


class TestCoerceHistory:
    def test_valid(self):
        history = coerce_history(frozenset({("v", 0), ("w", 3)}))
        assert history == frozenset({("v", 0), ("w", 3)})

    def test_plain_set_accepted(self):
        assert coerce_history({("v", 1)}) == frozenset({("v", 1)})

    def test_rejects_non_set(self):
        assert coerce_history([("v", 0)]) is None

    def test_rejects_bad_entries(self):
        assert coerce_history(frozenset({("v",)})) is None
        assert coerce_history(frozenset({("v", -1)})) is None
        assert coerce_history(frozenset({("v", "0")})) is None
        assert coerce_history(frozenset({("v", True)})) is None


class TestCoerceSelection:
    def test_valid_roundtrip(self):
        msg = SelectionMessage("v", 2, frozenset({("v", 2)}), frozenset({0, 1}))
        assert coerce_selection_message(msg) is msg

    def test_rejects_wrong_type(self):
        assert coerce_selection_message("garbage") is None
        assert coerce_selection_message(42) is None
        assert coerce_selection_message(None) is None

    def test_rejects_negative_ts(self):
        msg = SelectionMessage("v", -1, frozenset(), frozenset())
        assert coerce_selection_message(msg) is None

    def test_rejects_bool_ts(self):
        msg = SelectionMessage("v", True, frozenset(), frozenset())
        assert coerce_selection_message(msg) is None

    def test_rejects_malformed_history(self):
        msg = SelectionMessage("v", 0, frozenset({("bad",)}), frozenset())
        assert coerce_selection_message(msg) is None

    def test_rejects_non_frozen_selector(self):
        msg = SelectionMessage("v", 0, frozenset(), {0, 1})
        assert coerce_selection_message(msg) is None

    def test_rejects_non_int_selector_members(self):
        msg = SelectionMessage("v", 0, frozenset(), frozenset({"zero"}))
        assert coerce_selection_message(msg) is None

    def test_normalizes_plain_set_history(self):
        msg = SelectionMessage("v", 0, {("v", 0)}, frozenset())
        parsed = coerce_selection_message(msg)
        assert parsed is not None
        assert isinstance(parsed.history, frozenset)
        assert parsed.history == frozenset({("v", 0)})
        # frozenset histories are accepted as-is (no copy):
        msg2 = SelectionMessage("v", 0, frozenset({("v", 0)}), frozenset())
        assert coerce_selection_message(msg2) is msg2


class TestCoerceValidation:
    def test_valid(self):
        msg = ValidationMessage("v", frozenset({0, 1}))
        assert coerce_validation_message(msg) is msg

    def test_rejects_wrong_type(self):
        assert coerce_validation_message(("v", frozenset())) is None

    def test_rejects_bad_validators(self):
        assert coerce_validation_message(ValidationMessage("v", {0})) is None
        assert (
            coerce_validation_message(ValidationMessage("v", frozenset({"x"})))
            is None
        )


class TestCoerceDecision:
    def test_valid(self):
        msg = DecisionMessage("v", 3)
        assert coerce_decision_message(msg) is msg

    def test_rejects_wrong_type(self):
        assert coerce_decision_message({"vote": "v"}) is None

    def test_rejects_negative_ts(self):
        assert coerce_decision_message(DecisionMessage("v", -2)) is None
