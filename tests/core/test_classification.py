"""Table 1 in code: class bounds, classification, canonical parameters."""

import pytest

from repro.core.classification import (
    AlgorithmClass,
    build_class_parameters,
    classify,
)
from repro.core.parameters import ParameterError
from repro.core.types import FaultModel, Flag


class TestTableOneRows:
    def test_flags(self):
        assert AlgorithmClass.CLASS_1.flag is Flag.ANY
        assert AlgorithmClass.CLASS_2.flag is Flag.CURRENT_PHASE
        assert AlgorithmClass.CLASS_3.flag is Flag.CURRENT_PHASE

    def test_rounds_per_phase_column(self):
        assert AlgorithmClass.CLASS_1.rounds_per_phase == 2
        assert AlgorithmClass.CLASS_2.rounds_per_phase == 3
        assert AlgorithmClass.CLASS_3.rounds_per_phase == 3

    def test_state_column(self):
        assert AlgorithmClass.CLASS_1.state == ("vote",)
        assert AlgorithmClass.CLASS_2.state == ("vote", "ts")
        assert AlgorithmClass.CLASS_3.state == ("vote", "ts", "history")

    def test_n_column(self):
        # n > 5b + 3f, n > 4b + 2f, n > 3b + 2f.
        assert AlgorithmClass.CLASS_1.min_processes(1, 0) == 6
        assert AlgorithmClass.CLASS_2.min_processes(1, 0) == 5
        assert AlgorithmClass.CLASS_3.min_processes(1, 0) == 4
        assert AlgorithmClass.CLASS_1.min_processes(0, 1) == 4
        assert AlgorithmClass.CLASS_2.min_processes(0, 1) == 3
        assert AlgorithmClass.CLASS_3.min_processes(0, 1) == 3
        assert AlgorithmClass.CLASS_1.min_processes(2, 1) == 14
        assert AlgorithmClass.CLASS_2.min_processes(2, 1) == 11
        assert AlgorithmClass.CLASS_3.min_processes(2, 1) == 9

    def test_td_column(self):
        model = FaultModel(10, 1, 1)
        # TD > (n + 3b + f)/2 = 7 → 8; TD > 3b + f = 4 → 5; TD > 2b + f = 3 → 4.
        assert AlgorithmClass.CLASS_1.min_threshold(model) == 8
        assert AlgorithmClass.CLASS_2.min_threshold(model) == 5
        assert AlgorithmClass.CLASS_3.min_threshold(model) == 4

    def test_examples_column_mentions_known_algorithms(self):
        assert any("FaB" in e for e in AlgorithmClass.CLASS_1.examples)
        assert any("MQB" in e for e in AlgorithmClass.CLASS_2.examples)
        assert any("PBFT" in e for e in AlgorithmClass.CLASS_3.examples)


class TestAdmits:
    @pytest.mark.parametrize(
        "cls,n,b,expected",
        [
            (AlgorithmClass.CLASS_1, 6, 1, True),
            (AlgorithmClass.CLASS_1, 5, 1, False),
            (AlgorithmClass.CLASS_2, 5, 1, True),
            (AlgorithmClass.CLASS_2, 4, 1, False),
            (AlgorithmClass.CLASS_3, 4, 1, True),
            (AlgorithmClass.CLASS_3, 3, 1, False),
        ],
    )
    def test_byzantine_bounds(self, cls, n, b, expected):
        assert cls.admits(FaultModel(n, b, 0)) is expected

    def test_benign_bounds(self):
        # Classes 2 and 3 coincide at n > 2f when b = 0.
        assert AlgorithmClass.CLASS_2.admits(FaultModel(3, 0, 1))
        assert not AlgorithmClass.CLASS_2.admits(FaultModel(2, 0, 1))
        assert AlgorithmClass.CLASS_1.admits(FaultModel(4, 0, 1))
        assert not AlgorithmClass.CLASS_1.admits(FaultModel(3, 0, 1))


class TestClassify:
    def test_canonical_parameters_classify_back(self):
        cases = [
            (AlgorithmClass.CLASS_1, FaultModel(6, 1, 0)),
            (AlgorithmClass.CLASS_2, FaultModel(5, 1, 0)),
            (AlgorithmClass.CLASS_3, FaultModel(4, 1, 0)),
        ]
        for cls, model in cases:
            params = build_class_parameters(cls, model)
            assert classify(params) is cls

    def test_class2_parameters_also_satisfy_class3(self):
        """The classes nest: class-2 thresholds clear the class-3 bound.

        ``classify`` reports the tightest class (the paper's convention)."""
        model = FaultModel(5, 1, 0)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        assert params.threshold > AlgorithmClass.CLASS_3.td_strict_lower_bound(model)
        assert classify(params) is AlgorithmClass.CLASS_2

    def test_pbft_parameters_are_class3_only(self):
        model = FaultModel(4, 1, 0)
        params = build_class_parameters(AlgorithmClass.CLASS_3, model)
        # TD = 3 ≤ 3b + f = 3: not class 2.
        assert params.threshold <= 3 * model.b + model.f
        assert classify(params) is AlgorithmClass.CLASS_3


class TestBuildClassParameters:
    def test_below_bound_raises(self):
        with pytest.raises(ParameterError):
            build_class_parameters(AlgorithmClass.CLASS_2, FaultModel(4, 1, 0))
        with pytest.raises(ParameterError):
            build_class_parameters(AlgorithmClass.CLASS_3, FaultModel(3, 1, 0))

    def test_custom_threshold(self):
        model = FaultModel(7, 1, 0)
        params = build_class_parameters(
            AlgorithmClass.CLASS_3, model, threshold=4
        )
        assert params.threshold == 4

    def test_default_selector_is_pi(self, pbft_model):
        params = build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)
        assert params.selector.select(0, 1) == frozenset(pbft_model.processes)
