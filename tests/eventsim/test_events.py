"""Event queue ordering."""

import pytest

from repro.eventsim.events import EventQueue


def test_orders_by_time():
    queue = EventQueue()
    queue.push(3.0, "c")
    queue.push(1.0, "a")
    queue.push(2.0, "b")
    assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]


def test_fifo_tiebreak():
    queue = EventQueue()
    queue.push(1.0, "first")
    queue.push(1.0, "second")
    queue.push(1.0, "third")
    assert [queue.pop().payload for _ in range(3)] == ["first", "second", "third"]


def test_peek_time():
    queue = EventQueue()
    assert queue.peek_time() is None
    queue.push(5.0, "x")
    assert queue.peek_time() == 5.0
    queue.pop()
    assert queue.peek_time() is None


def test_len_and_bool():
    queue = EventQueue()
    assert not queue
    queue.push(1.0, "x")
    assert len(queue) == 1
    assert queue


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(-1.0, "x")


def test_clear_returns_dropped_count():
    queue = EventQueue()
    for time in (1.0, 2.0, 3.0):
        queue.push(time, "x")
    assert queue.clear() == 3
    assert not queue and queue.peek_time() is None
    assert queue.clear() == 0


def test_clear_then_reuse():
    queue = EventQueue()
    queue.push(1.0, "old")
    queue.clear()
    queue.push(2.0, "new")
    assert queue.pop().payload == "new"
