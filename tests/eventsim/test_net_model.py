"""Latency models and partial synchrony."""

import random

import pytest

from repro.eventsim.network import (
    FixedLatency,
    PartialSynchronyNetwork,
    UniformLatency,
)


def test_fixed_latency():
    model = FixedLatency(2.5)
    rng = random.Random(0)
    assert model.sample(rng, 0, 1) == 2.5


def test_uniform_latency_bounds():
    model = UniformLatency(0.5, 2.0)
    rng = random.Random(0)
    samples = [model.sample(rng, 0, 1) for _ in range(100)]
    assert all(0.5 <= s <= 2.0 for s in samples)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(2.0, 1.0)
    with pytest.raises(ValueError):
        UniformLatency(0.0, 1.0)


class TestPartialSynchrony:
    def test_post_gst_clamped_to_delta(self):
        net = PartialSynchronyNetwork(
            UniformLatency(1.0, 50.0), gst=10.0, delta=2.0, seed=1
        )
        for _ in range(50):
            assert net.transit_time(10.0, 0, 1) <= 2.0
            assert net.transit_time(99.0, 0, 1) <= 2.0

    def test_pre_gst_can_exceed_delta(self):
        net = PartialSynchronyNetwork(
            FixedLatency(1.0),
            gst=100.0,
            delta=2.0,
            pre_gst_delay_prob=1.0,
            chaos_factor=50.0,
            seed=1,
        )
        assert net.transit_time(0.0, 0, 1) == 50.0

    def test_pre_gst_without_delay_uses_base(self):
        net = PartialSynchronyNetwork(
            FixedLatency(1.0), gst=100.0, delta=2.0, pre_gst_delay_prob=0.0
        )
        assert net.transit_time(0.0, 0, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialSynchronyNetwork(FixedLatency(), delta=0.0)
        with pytest.raises(ValueError):
            PartialSynchronyNetwork(FixedLatency(), pre_gst_delay_prob=2.0)
