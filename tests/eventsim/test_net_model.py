"""Latency models and partial synchrony."""

import random

import pytest

from repro.eventsim.network import (
    FixedLatency,
    NetworkSpec,
    PartialSynchronyNetwork,
    UniformLatency,
)


def test_fixed_latency():
    model = FixedLatency(2.5)
    rng = random.Random(0)
    assert model.sample(rng, 0, 1) == 2.5


def test_fixed_latency_must_be_positive():
    """LatencyModel.sample promises positive values; FixedLatency validates
    like UniformLatency always has."""
    with pytest.raises(ValueError, match="positive"):
        FixedLatency(0.0)
    with pytest.raises(ValueError, match="positive"):
        FixedLatency(-1.0)


class TestNetworkSpecValidation:
    def test_fixed_kind_rejects_non_positive_latency(self):
        with pytest.raises(ValueError, match="positive"):
            NetworkSpec(kind="fixed", low=0.0)
        with pytest.raises(ValueError, match="positive"):
            NetworkSpec(kind="fixed", low=-2.0)

    def test_uniform_kind_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="low"):
            NetworkSpec(kind="uniform", low=0.0, high=1.0)
        with pytest.raises(ValueError, match="low"):
            NetworkSpec(kind="uniform", low=3.0, high=1.0)

    def test_valid_specs_still_build(self):
        assert NetworkSpec(kind="fixed", low=1.5).build(0) is not None
        assert NetworkSpec(kind="uniform", low=0.5, high=2.0).build(0) is not None


def test_uniform_latency_bounds():
    model = UniformLatency(0.5, 2.0)
    rng = random.Random(0)
    samples = [model.sample(rng, 0, 1) for _ in range(100)]
    assert all(0.5 <= s <= 2.0 for s in samples)


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(2.0, 1.0)
    with pytest.raises(ValueError):
        UniformLatency(0.0, 1.0)


class TestPartialSynchrony:
    def test_post_gst_clamped_to_delta(self):
        net = PartialSynchronyNetwork(
            UniformLatency(1.0, 50.0), gst=10.0, delta=2.0, seed=1
        )
        for _ in range(50):
            assert net.transit_time(10.0, 0, 1) <= 2.0
            assert net.transit_time(99.0, 0, 1) <= 2.0

    def test_pre_gst_can_exceed_delta(self):
        net = PartialSynchronyNetwork(
            FixedLatency(1.0),
            gst=100.0,
            delta=2.0,
            pre_gst_delay_prob=1.0,
            chaos_factor=50.0,
            seed=1,
        )
        assert net.transit_time(0.0, 0, 1) == 50.0

    def test_pre_gst_without_delay_uses_base(self):
        net = PartialSynchronyNetwork(
            FixedLatency(1.0), gst=100.0, delta=2.0, pre_gst_delay_prob=0.0
        )
        assert net.transit_time(0.0, 0, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PartialSynchronyNetwork(FixedLatency(), delta=0.0)
        with pytest.raises(ValueError):
            PartialSynchronyNetwork(FixedLatency(), pre_gst_delay_prob=2.0)
