"""Timed consensus runs: decision latency under partial synchrony."""

import pytest

from repro.algorithms import build_fab_paxos, build_paxos, build_pbft
from repro.eventsim.network import (
    FixedLatency,
    PartialSynchronyNetwork,
    UniformLatency,
)
from repro.eventsim.runtime import run_timed_consensus


def synchronous_net(seed=0):
    return PartialSynchronyNetwork(UniformLatency(0.5, 2.0), gst=0.0, delta=2.0, seed=seed)


class TestSynchronousRuns:
    def test_pbft_decides_in_one_phase(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "a"},
            synchronous_net(),
            round_duration=2.5,
            byzantine={3: "equivocator"},
        )
        assert outcome.agreement_holds
        assert outcome.rounds_executed == 3
        assert outcome.last_decision_time == pytest.approx(7.5)

    def test_fab_is_faster_per_phase_than_pbft(self):
        """Class 1's 2-round phases beat class 3's 3-round phases in time."""
        fab = build_fab_paxos(6)
        pbft = build_pbft(4)
        fab_out = run_timed_consensus(
            fab.parameters,
            {pid: "v" for pid in range(6)},
            synchronous_net(),
        )
        pbft_out = run_timed_consensus(
            pbft.parameters,
            {pid: "v" for pid in range(4)},
            synchronous_net(),
        )
        assert fab_out.last_decision_time < pbft_out.last_decision_time

    def test_message_accounting(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters, {pid: "v" for pid in range(4)}, synchronous_net()
        )
        assert outcome.messages_sent >= outcome.messages_delivered > 0


class TestPartialSynchrony:
    def test_gst_delays_decision(self):
        spec = build_paxos(3)
        early = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "c"},
            PartialSynchronyNetwork(
                FixedLatency(1.0), gst=0.0, delta=2.0, seed=3
            ),
            round_duration=2.5,
        )
        late = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "c"},
            PartialSynchronyNetwork(
                FixedLatency(1.0),
                gst=20.0,
                delta=2.0,
                pre_gst_delay_prob=0.9,
                seed=3,
            ),
            round_duration=2.5,
        )
        assert early.agreement_holds and late.agreement_holds
        assert early.all_decided and late.all_decided
        assert late.last_decision_time > early.last_decision_time

    def test_safety_before_gst(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "a"},
            PartialSynchronyNetwork(
                UniformLatency(0.5, 2.0),
                gst=10**9,  # never stabilizes within the run
                pre_gst_delay_prob=0.7,
                seed=5,
            ),
            byzantine={3: "equivocator"},
            max_phases=8,
        )
        assert outcome.agreement_holds  # may or may not decide


class TestSelectionRoundFactor:
    def test_stretched_selection_rounds_cost_time(self):
        spec = build_pbft(4)
        plain = run_timed_consensus(
            spec.parameters, {pid: "v" for pid in range(4)}, synchronous_net()
        )
        stretched = run_timed_consensus(
            spec.parameters,
            {pid: "v" for pid in range(4)},
            synchronous_net(),
            selection_round_factor=3.0,  # models the 3-round Pcons impl
        )
        assert stretched.last_decision_time > plain.last_decision_time


def test_missing_initial_value():
    spec = build_pbft(4)
    with pytest.raises(ValueError, match="missing initial value"):
        run_timed_consensus(spec.parameters, {0: "a"}, synchronous_net())


class TestSeedThreading:
    def _run(self, seed):
        spec = build_pbft(4)
        network = PartialSynchronyNetwork(
            UniformLatency(0.5, 2.0),
            gst=12.0,
            pre_gst_delay_prob=0.7,
            seed=999,  # overridden by the explicit per-run seed
        )
        return run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "a"},
            network,
            byzantine={3: "equivocator"},
            max_phases=20,
            seed=seed,
        )

    def test_same_seed_reproduces(self):
        first, second = self._run(42), self._run(42)
        assert first.last_decision_time == second.last_decision_time
        assert first.messages_delivered == second.messages_delivered
        assert first.messages_dropped == second.messages_dropped

    def test_seed_overrides_network_state(self):
        """Distinct seeds give distinct RNG streams despite equal networks."""
        outcomes = {self._run(seed).messages_dropped for seed in range(6)}
        assert len(outcomes) > 1

    def test_rng_injection(self):
        import random

        network = PartialSynchronyNetwork(
            UniformLatency(0.5, 2.0), rng=random.Random(7)
        )
        reference = PartialSynchronyNetwork(UniformLatency(0.5, 2.0), seed=7)
        samples = [network.transit_time(0.0, 0, 1) for _ in range(5)]
        expected = [reference.transit_time(0.0, 0, 1) for _ in range(5)]
        assert samples == expected


class TestAllDecided:
    """Regression: all_decided once meant *any* process decided."""

    def test_partial_decision_is_not_all_decided(self):
        from repro.eventsim.runtime import TimedOutcome
        from repro.rounds.base import RunContext

        spec = build_pbft(4)
        context = RunContext(spec.parameters.model, byzantine=frozenset({3}))
        outcome = TimedOutcome(
            parameters=spec.parameters,
            decision_times={0: 7.5},  # one decider out of correct {0, 1, 2}
            decided_values={0: "a"},
            rounds_executed=3,
            simulated_time=7.5,
            messages_sent=10,
            messages_delivered=9,
            context=context,
        )
        assert not outcome.all_decided
        outcome.decision_times.update({1: 7.5, 2: 7.5})
        assert outcome.all_decided

    def test_byzantine_and_crashed_processes_are_not_required(self):
        from repro.core.types import FaultModel
        from repro.eventsim.runtime import TimedOutcome
        from repro.rounds.base import RunContext

        spec = build_pbft(4)
        context = RunContext(FaultModel(4, 1, 1), byzantine=frozenset({3}))
        outcome = TimedOutcome(
            parameters=spec.parameters,
            decision_times={0: 5.0, 1: 5.0, 2: 5.0},
            decided_values={0: "a", 1: "a", 2: "a"},
            rounds_executed=2,
            simulated_time=5.0,
            messages_sent=8,
            messages_delivered=8,
            context=context,
        )
        assert outcome.all_decided  # Byzantine 3 never needs to decide
        context.mark_crashed(0)
        del outcome.decision_times[0]
        assert outcome.all_decided  # crashed 0 no longer required

    def test_full_run_still_reports_all_decided(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters, {pid: "v" for pid in range(4)}, synchronous_net()
        )
        assert outcome.all_decided
        assert set(outcome.decision_times) == {0, 1, 2, 3}


def test_dropped_messages_are_counted():
    """Pre-GST chaos pushes messages past their deadline: all accounted."""
    spec = build_pbft(4)
    outcome = run_timed_consensus(
        spec.parameters,
        {pid: f"v{pid % 2}" for pid in range(4)},
        PartialSynchronyNetwork(
            UniformLatency(0.5, 2.0),
            gst=20.0,
            pre_gst_delay_prob=0.8,
            seed=13,
        ),
        max_phases=20,
    )
    assert outcome.messages_dropped > 0
    assert (
        outcome.messages_delivered + outcome.messages_dropped
        == outcome.messages_sent
    )
