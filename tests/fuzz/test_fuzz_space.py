"""The fuzz search space: seeded generation, mutation, serialization.

Determinism is the load-bearing property: candidates must be a pure
function of the RNG they are handed, and a candidate must survive the
JSONL round-trip (``to_mapping`` → ``json`` → ``from_mapping``) as an
*identical, hashable* object — the corpus stores mappings, and resume
rebuilds mutation sources from them, so any list/tuple drift would fork
the search the moment it resumes.
"""

from __future__ import annotations

import json
from random import Random

import pytest

from repro.fuzz import (
    DEFAULT_ALGORITHMS,
    FuzzCandidate,
    FuzzSpace,
    generate,
    mutate,
)


def test_generation_is_deterministic():
    space = FuzzSpace()
    first = [generate(space, Random(42)) for _ in range(1)]
    for _ in range(3):
        assert [generate(space, Random(42))] == first
    # Distinct seeds explore: 50 draws should not collapse to one key.
    keys = {generate(space, Random(seed)).key() for seed in range(50)}
    assert len(keys) > 25


def test_generated_candidates_are_constructible_and_hashable():
    space = FuzzSpace()
    for seed in range(30):
        candidate = generate(space, Random(seed))
        assert candidate.algorithm in DEFAULT_ALGORITHMS
        assert candidate.n >= candidate.b + candidate.f
        hash(candidate)  # frozen dataclasses all the way down
        hash(candidate.scenario)


def test_mutation_is_deterministic_and_stays_in_space():
    space = FuzzSpace()
    source = generate(space, Random(7))
    mutants = [mutate(space, source, Random(i)) for i in range(20)]
    assert mutants == [mutate(space, source, Random(i)) for i in range(20)]
    for mutant in mutants:
        assert mutant.algorithm in space.algorithms
        assert mutant.engine in space.engines
        hash(mutant.scenario)


def test_mapping_round_trip_through_json_is_identical():
    """The corpus path: mapping → JSON text → mapping → candidate.

    The rebuilt candidate must be *equal* (same dataclass, tuples not
    lists — an unhashable scenario would poison the compilation memo and
    fork resumed searches) and must re-serialize to the same bytes.
    """
    space = FuzzSpace()
    for seed in range(30):
        candidate = generate(space, Random(seed))
        text = json.dumps(candidate.to_mapping(), sort_keys=True)
        rebuilt = FuzzCandidate.from_mapping(json.loads(text))
        assert rebuilt == candidate
        assert rebuilt.key() == candidate.key()
        hash(rebuilt.scenario)  # regression: empty windows list stayed a list
        assert json.dumps(rebuilt.to_mapping(), sort_keys=True) == text


def test_space_fingerprint_tracks_configuration():
    assert FuzzSpace().fingerprint() == FuzzSpace().fingerprint()
    narrowed = FuzzSpace(algorithms=("pbft",))
    assert narrowed.fingerprint() != FuzzSpace().fingerprint()


def test_space_validation():
    with pytest.raises(ValueError):
        FuzzSpace(algorithms=())
    with pytest.raises(ValueError):
        FuzzSpace(engines=("warp",))
    with pytest.raises(ValueError):
        FuzzSpace(n_range=(9, 3))
