"""The fuzz loop's determinism and crash-safety contracts.

For a fixed (seed, budget, space) the findings JSONL is byte-identical
across reruns and across arbitrary interruption/resume points — including
the crash window where a finding was appended but not yet acknowledged in
the state sidecar.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.fuzz import (
    FuzzConfig,
    FuzzSpace,
    replay_finding,
    run_fuzz,
    scan_findings,
    state_path,
)

#: Small but eventful: the (4,2,0) one-third-rule cell is far over-bound,
#: so this budget reliably produces both safety and liveness findings.
SPACE = FuzzSpace(
    algorithms=("one-third-rule", "pbft"),
    engines=("lockstep",),
    models=((4, 2, 0), (4, 1, 0)),
)
CONFIG = FuzzConfig(space=SPACE, seed=11, budget=16, over_bound="allow")


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    out = tmp_path_factory.mktemp("fuzz") / "baseline.jsonl"
    summary = run_fuzz(CONFIG, out)
    assert summary.findings > 0, "fixture config must find violations"
    assert not state_path(out).exists(), "completed run removes its state"
    return out.read_bytes(), summary


def test_rerun_is_byte_identical(tmp_path, baseline):
    out = tmp_path / "again.jsonl"
    run_fuzz(CONFIG, out)
    assert out.read_bytes() == baseline[0]


def test_stop_after_leaves_valid_state_and_resume_completes(
    tmp_path, baseline
):
    out = tmp_path / "interrupted.jsonl"
    summary = run_fuzz(CONFIG, out, stop_after=5)
    assert summary.interrupted
    assert summary.next_index == 5
    assert state_path(out).exists()
    resumed = run_fuzz(CONFIG, out, resume=True)
    assert not resumed.interrupted
    assert not state_path(out).exists()
    assert out.read_bytes() == baseline[0]


def test_resume_heals_the_crash_window(tmp_path, baseline):
    """A finding appended but unacknowledged is truncated and re-found."""
    out = tmp_path / "crashed.jsonl"
    run_fuzz(CONFIG, out, stop_after=6)
    records = scan_findings(out)
    # Simulate the torn state: a record past the acknowledged index plus
    # a torn half-line, exactly what a kill mid-append leaves behind.
    with out.open("a", encoding="utf-8") as handle:
        fake = dict(records[0]) if records else {"index": 99}
        fake["index"] = 6
        handle.write(json.dumps(fake, sort_keys=True) + "\n")
        handle.write('{"index": 7, "torn')
    run_fuzz(CONFIG, out, resume=True)
    assert out.read_bytes() == baseline[0]


def test_resume_refuses_foreign_configuration(tmp_path):
    out = tmp_path / "foreign.jsonl"
    run_fuzz(CONFIG, out, stop_after=3)
    for change in (
        {"seed": 12},
        {"budget": 99},
        {"over_bound": "never"},
        {"space": FuzzSpace(algorithms=("pbft",), engines=("lockstep",))},
    ):
        other = dataclasses.replace(CONFIG, **change)
        with pytest.raises(ValueError):
            run_fuzz(other, out, resume=True)


def test_fresh_run_refuses_existing_state(tmp_path):
    out = tmp_path / "busy.jsonl"
    run_fuzz(CONFIG, out, stop_after=3)
    with pytest.raises(FileExistsError):
        run_fuzz(CONFIG, out)


def test_resume_without_state_raises(tmp_path, baseline):
    out = tmp_path / "done.jsonl"
    run_fuzz(CONFIG, out)
    with pytest.raises(ValueError):
        run_fuzz(CONFIG, out, resume=True)


def test_findings_replay_and_shrink_forms_reproduce(baseline):
    _bytes, _summary = baseline
    records = [
        json.loads(line) for line in _bytes.decode().splitlines() if line
    ]
    assert records
    for record in records[:3]:
        verdict = replay_finding(record)
        assert verdict.kind == record["kind"]
        assert list(verdict.violated) == record["violated"]
        if "shrunk" in record:
            shrunk = replay_finding(record, shrunk=True)
            assert shrunk.kind == record["kind"]


def test_records_are_self_contained(baseline):
    _bytes, _summary = baseline
    record = json.loads(_bytes.decode().splitlines()[0])
    for field in (
        "index", "kind", "violated", "candidate", "key", "seed",
        "fuzz_seed", "result", "over_bound",
    ):
        assert field in record
    assert record["result"]["status"] is not None
