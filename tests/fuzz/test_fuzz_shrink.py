"""Shrinker invariants: admissible steps, preserved findings, determinism.

Satellite contract: every accepted shrink step is a constructible,
still-failing candidate (same finding kind under its own content-derived
seed), and the whole trace is a pure function of the starting candidate —
re-shrinking yields the identical minimal spec and op list.
"""

from __future__ import annotations

import pytest

from repro.fuzz import (
    FuzzCandidate,
    candidate_seed,
    classify_candidate,
    shrink_candidate,
)
from repro.scenarios.spec import CommSpec, ScenarioSpec

FUZZ_SEED = 7


def messy_over_bound_otr() -> FuzzCandidate:
    """A deliberately noisy over-bound cell for the shrinker to chew on."""
    return FuzzCandidate(
        algorithm="one-third-rule",
        n=6,
        b=3,
        f=0,
        engine="lockstep",
        scenario=ScenarioSpec(
            name="fuzz",
            byzantine=("equivocator", "equivocator", "equivocator"),
            comm=CommSpec(
                kind="good-bad",
                schedule="after",
                good_from=4,
                bad="drop",
                drop_prob=0.5,
            ),
            max_phases=14,
        ),
        max_phases=14,
    )


@pytest.fixture(scope="module")
def shrunk():
    candidate = messy_over_bound_otr()
    verdict = classify_candidate(
        candidate,
        candidate_seed(FUZZ_SEED, candidate),
        over_bound="allow",
    )
    assert verdict.is_finding, "fixture cell must be a finding"
    result = shrink_candidate(
        candidate,
        verdict.kind,
        fuzz_seed=FUZZ_SEED,
        over_bound="allow",
    )
    return candidate, verdict.kind, result


def test_every_accepted_step_reproduces_the_finding(shrunk):
    _candidate, kind, result = shrunk
    assert len(result.steps) == len(result.ops)
    for step in result.steps:
        verdict = classify_candidate(
            step,
            candidate_seed(FUZZ_SEED, step),
            over_bound="allow",
        )
        assert verdict.kind == kind, (
            f"accepted step {step.key()} does not reproduce {kind}"
        )


def test_every_accepted_step_is_admissible(shrunk):
    """Steps are constructible candidates, not just mappings."""
    _candidate, _kind, result = shrunk
    for step in result.steps:
        assert step.n >= 1
        assert step.b >= 0 and step.f >= 0
        assert step.b + step.f < step.n or step.b + step.f == 0
        hash(step.scenario)
        # Rebuilding from the wire form must not change it.
        assert FuzzCandidate.from_mapping(step.to_mapping()) == step


def test_shrink_is_minimizing_and_simpler(shrunk):
    candidate, _kind, result = shrunk
    final = result.candidate
    assert result.ops, "noisy cell must shrink at least one op"
    assert len(final.scenario.byzantine) <= len(candidate.scenario.byzantine)
    assert final.n <= candidate.n
    # Over-bound OTR findings shrink to ≤ f+1 Byzantine slots and at most
    # one communication clause (the acceptance criterion's bar).
    assert len(final.scenario.byzantine) <= final.f + 1
    comm = final.scenario.comm
    assert comm.kind in ("reliable",) or (
        comm.kind == "good-bad" and comm.schedule == "after"
    )


def test_shrink_is_deterministic(shrunk):
    candidate, kind, result = shrunk
    again = shrink_candidate(
        candidate, kind, fuzz_seed=FUZZ_SEED, over_bound="allow"
    )
    assert again.candidate == result.candidate
    assert again.ops == result.ops
    assert again.attempts == result.attempts
    assert again.steps == result.steps


def test_shrink_refuses_non_findings():
    candidate = messy_over_bound_otr()
    with pytest.raises(ValueError):
        shrink_candidate(candidate, None, fuzz_seed=FUZZ_SEED)
    with pytest.raises(ValueError):
        shrink_candidate(candidate, "ok", fuzz_seed=FUZZ_SEED)


def test_shrink_respects_attempt_budget():
    candidate = messy_over_bound_otr()
    verdict = classify_candidate(
        candidate,
        candidate_seed(FUZZ_SEED, candidate),
        over_bound="allow",
    )
    result = shrink_candidate(
        candidate,
        verdict.kind,
        fuzz_seed=FUZZ_SEED,
        over_bound="allow",
        max_attempts=3,
    )
    assert result.attempts <= 3
