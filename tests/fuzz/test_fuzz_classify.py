"""Classification: in-bounds cells are quiet, over-bound cells scream.

The fuzzer's signal-to-noise hinges on two facts this suite pins:

* **in-bounds** candidates (models the Theorem 1 bounds admit) never
  classify as findings under the eligibility gates — safety holds by the
  paper's agreement proof, and liveness stalls are only counted when the
  schedule guarantees eventual good communication;
* **over-bound** candidates (``3b ≥ n`` for the one-third rule) execute on
  clamped boundary parameters under ``over_bound="allow"`` and produce
  genuine agreement violations for an equivocating adversary.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.fuzz import (
    BOUNDARY_CLASSES,
    FuzzCandidate,
    FuzzSpace,
    boundary_parameters,
    candidate_seed,
    classify_candidate,
    generate,
)
from repro.core.types import FaultModel
from repro.scenarios.spec import ScenarioSpec


def over_bound_otr() -> FuzzCandidate:
    """One-third rule at (4, 2, 0): 3b = 6 ≥ n = 4, far over the bound."""
    return FuzzCandidate(
        algorithm="one-third-rule",
        n=4,
        b=2,
        f=0,
        engine="lockstep",
        scenario=ScenarioSpec(
            name="fuzz", byzantine=("equivocator", "equivocator")
        ),
        max_phases=12,
    )


def test_in_bounds_candidates_produce_no_findings():
    """A seeded sample of the default space: zero findings in bounds."""
    space = FuzzSpace()
    for seed in range(25):
        candidate = generate(space, Random(seed))
        verdict = classify_candidate(
            candidate, candidate_seed(0, candidate), over_bound="never"
        )
        assert not verdict.is_finding, (
            f"in-bounds candidate {candidate.key()} classified as "
            f"{verdict.kind}: {verdict.violated}"
        )


def test_over_bound_equivocator_violates_agreement():
    candidate = over_bound_otr()
    seed = candidate_seed(7, candidate)
    # Refused without the escape hatch: the model is outside Theorem 1.
    skipped = classify_candidate(candidate, seed, over_bound="never")
    assert not skipped.is_finding
    assert skipped.status in ("inadmissible", "skipped")
    found = classify_candidate(candidate, seed, over_bound="allow")
    assert found.is_finding
    assert found.kind == "safety"
    assert "agreement" in found.violated
    assert found.row["over_bound"] is True


def test_over_bound_only_skips_in_bounds_cells():
    candidate = FuzzCandidate(
        algorithm="pbft",
        n=4,
        b=1,
        f=0,
        engine="lockstep",
        scenario=ScenarioSpec(name="fuzz", byzantine=("silent",)),
        max_phases=12,
    )
    verdict = classify_candidate(
        candidate, candidate_seed(0, candidate), over_bound="only"
    )
    assert verdict.status == "skipped"
    assert not verdict.is_finding


def test_classification_is_deterministic():
    candidate = over_bound_otr()
    seed = candidate_seed(7, candidate)
    rows = [
        classify_candidate(candidate, seed, over_bound="allow").row
        for _ in range(3)
    ]
    assert rows[0] == rows[1] == rows[2]


def test_candidate_seed_is_content_derived():
    candidate = over_bound_otr()
    assert candidate_seed(7, candidate) == candidate_seed(7, candidate)
    assert candidate_seed(7, candidate) != candidate_seed(8, candidate)
    other = FuzzCandidate(
        algorithm="pbft",
        n=4,
        b=1,
        f=0,
        engine="lockstep",
        scenario=ScenarioSpec(name="fuzz"),
        max_phases=12,
    )
    assert candidate_seed(7, candidate) != candidate_seed(7, other)


def test_boundary_parameters_clamp_to_model():
    for name in sorted(BOUNDARY_CLASSES):
        model = FaultModel(4, 2, 0)
        parameters, _config = boundary_parameters(name, model)
        assert 1 <= parameters.threshold <= model.n
        assert parameters.model == model
    with pytest.raises(ValueError):
        boundary_parameters("ben-or", FaultModel(4, 2, 0))
