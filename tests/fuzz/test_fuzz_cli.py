"""``repro fuzz run|replay|shrink``: exit codes mirror ``campaign run``.

The interrupt contract is the satellite under test: ``--stop-after``
leaves a valid state sidecar and exits 3, Ctrl-C (KeyboardInterrupt)
exits 130 with the state retained, ``--resume`` completes byte-identically,
and usage errors exit 2.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

OVER_BOUND_ARGS = [
    "--models", "4,2,0",
    "--algorithms", "one-third-rule",
    "--engines", "lockstep",
    "--over-bound", "allow",
    "--quiet",
]


def run_args(out, *extra):
    return [
        "fuzz", "run", "--seed", "7", "--budget", "16", "--out", str(out),
        *OVER_BOUND_ARGS, *extra,
    ]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    out = tmp_path_factory.mktemp("fuzz-cli") / "findings.jsonl"
    assert main(run_args(out)) == 0
    assert out.exists() and out.stat().st_size > 0
    return out


def test_stop_after_exits_3_and_resume_matches(tmp_path, corpus):
    out = tmp_path / "findings.jsonl"
    assert main(run_args(out, "--stop-after", "4")) == 3
    assert (tmp_path / "findings.jsonl.state").exists()
    assert main(run_args(out, "--resume")) == 0
    assert not (tmp_path / "findings.jsonl.state").exists()
    assert out.read_bytes() == corpus.read_bytes()


def test_keyboard_interrupt_exits_130_and_keeps_state(
    tmp_path, monkeypatch, capsys
):
    """Ctrl-C mid-loop: exit 130, checkpoint retained, resume completes."""
    out = tmp_path / "findings.jsonl"
    import repro.fuzz.runner as runner_mod

    real_classify = runner_mod.classify_candidate
    calls = {"n": 0}

    def interrupting(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 3:
            raise KeyboardInterrupt
        return real_classify(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "classify_candidate", interrupting)
    assert main(run_args(out)) == 130
    assert "resume" in capsys.readouterr().err
    assert (tmp_path / "findings.jsonl.state").exists()
    monkeypatch.setattr(runner_mod, "classify_candidate", real_classify)
    assert main(run_args(out, "--resume")) == 0


def test_usage_errors_exit_2(tmp_path, corpus):
    out = tmp_path / "findings.jsonl"
    # malformed --models
    assert main(run_args(out, "--models", "4:2:0")) == 2
    assert main(run_args(out, "--models", "nope")) == 2
    # resume with nothing to resume
    assert main(run_args(tmp_path / "void.jsonl", "--resume")) == 2
    # state exists without --resume
    assert main(run_args(out, "--stop-after", "2")) == 3
    assert main(run_args(out)) == 2


def test_replay_reproduces_and_reports(corpus, capsys):
    assert main(["fuzz", "replay", str(corpus)]) == 0
    out = capsys.readouterr().out
    assert "finding reproduced" in out
    assert main(["fuzz", "replay", str(corpus), "--shrunk"]) == 0


def test_replay_missing_index_exits_2(corpus, capsys):
    assert main(["fuzz", "replay", str(corpus), "--index", "99999"]) == 2
    assert "no finding with index" in capsys.readouterr().err


def test_shrink_command_prints_minimal_candidate(corpus, capsys):
    assert main(["fuzz", "shrink", str(corpus)]) == 0
    out = capsys.readouterr().out
    tail = out.strip().splitlines()[-1]
    payload = json.loads(tail)
    record = json.loads(corpus.read_text().splitlines()[0])
    # Re-shrinking from the corpus reproduces the recorded minimal form.
    assert payload["shrunk_key"] == record["shrunk_key"]
    assert payload["shrink_ops"] == record["shrink_ops"]


def test_fail_on_finding_gates_ci(tmp_path, corpus):
    out = tmp_path / "gate.jsonl"
    assert main(run_args(out, "--fail-on-finding")) == 1
    # An in-bounds space stays quiet and passes the gate.
    quiet = tmp_path / "quiet.jsonl"
    code = main([
        "fuzz", "run", "--seed", "7", "--budget", "8", "--out", str(quiet),
        "--models", "4,1,0", "--algorithms", "pbft", "--engines", "lockstep",
        "--quiet", "--fail-on-finding",
    ])
    assert code == 0
