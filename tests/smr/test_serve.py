"""Pipelined, batched serving: workload determinism and digest equivalence.

The central oracle: whatever the batching and pipelining settings, the
committed command sequence must equal the slot-at-a-time baseline's —
batching and pipelining are *serving* optimizations, not semantic changes.
"""

import itertools

import pytest

from repro.scenarios import ScenarioInapplicable
from repro.smr import (
    CounterMachine,
    ServeConfig,
    WorkloadSpec,
    run_serve,
    sweep_serve,
)


class TestWorkloadSpec:
    def test_arrivals_are_deterministic(self):
        spec = WorkloadSpec(clients=3, rate=50.0, duration=1.0, seed=42)
        assert list(spec.arrivals()) == list(spec.arrivals())

    def test_seed_changes_arrivals(self):
        a = WorkloadSpec(clients=2, rate=50.0, duration=1.0, seed=1)
        b = WorkloadSpec(clients=2, rate=50.0, duration=1.0, seed=2)
        assert list(a.arrivals()) != list(b.arrivals())

    def test_arrivals_sorted_and_bounded(self):
        spec = WorkloadSpec(clients=4, rate=80.0, duration=2.0, seed=7)
        times = [when for when, _ in spec.arrivals()]
        assert times == sorted(times)
        assert all(0.0 < when <= spec.duration for when in times)

    def test_fixed_rate_is_exact(self):
        spec = WorkloadSpec(
            clients=2, rate=40.0, duration=1.0, arrival="fixed", seed=0
        )
        arrivals = list(spec.arrivals())
        assert len(arrivals) == spec.expected_commands == 40

    def test_poisson_count_is_near_rate(self):
        spec = WorkloadSpec(clients=4, rate=1000.0, duration=1.0, seed=3)
        count = sum(1 for _ in spec.arrivals())
        assert 850 <= count <= 1150  # ~3 sigma around the mean

    def test_huge_workload_is_lazy(self):
        # A hundred-million-command workload must cost O(clients) to peek.
        spec = WorkloadSpec(clients=4, rate=100_000_000.0, duration=1.0)
        head = list(itertools.islice(spec.arrivals(), 10))
        assert len(head) == 10

    def test_commands_cycle_keyspace(self):
        spec = WorkloadSpec(clients=1, rate=64.0, duration=1.0,
                            arrival="fixed", keys=4)
        keys = {command[1] for _, command in spec.arrivals()}
        assert keys == {"c0k0", "c0k1", "c0k2", "c0k3"}

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(clients=0)
        with pytest.raises(ValueError):
            WorkloadSpec(rate=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival="bursty")


class TestServeConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(batch=0)
        with pytest.raises(ValueError):
            ServeConfig(depth=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_bytes=0)
        with pytest.raises(ValueError):
            ServeConfig(max_attempts=0)

    def test_inadmissible_model_raises(self):
        # PBFT hosts no crash faults: f > 0 cannot be served.
        with pytest.raises(ScenarioInapplicable):
            run_serve(
                ServeConfig(algorithm="pbft", n=7, b=2, f=2),
                WorkloadSpec(rate=10.0, duration=0.1),
            )


WORKLOAD = WorkloadSpec(clients=3, rate=60.0, duration=1.0, seed=11)


def _serve(scenario, batch, depth, **overrides):
    config = ServeConfig(
        algorithm="pbft", n=4, b=1, scenario=scenario,
        batch=batch, depth=depth, seed=5, **overrides,
    )
    return run_serve(config, WORKLOAD)


class TestDigestEquivalence:
    """Batched + pipelined serving is digest-equal to slot-at-a-time."""

    @pytest.fixture(scope="class")
    def baseline(self):
        report = _serve("fault-free", batch=1, depth=1)
        assert not report.stalled
        return report

    @pytest.mark.parametrize("batch", [1, 4, 16])
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_batch_depth_grid(self, baseline, batch, depth):
        report = _serve("fault-free", batch=batch, depth=depth)
        assert not report.stalled
        assert report.offered == baseline.offered
        assert report.committed_commands == baseline.committed_commands
        assert report.digests_agree
        assert report.digest == baseline.digest
        assert report.log_digest == baseline.log_digest

    @pytest.mark.parametrize(
        "scenario",
        [
            "worst_case",        # all Byzantine slots hosting attack strategies
            "silent_minority",   # silent Byzantine processes
            "partition_heal",    # equivocator + late GST
            "async_then_sync",
            "lossy_channel",
            "flaky_gst",
        ],
    )
    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    def test_gauntlet_scenarios(self, baseline, scenario, engine):
        report = _serve(scenario, batch=4, depth=2, engine=engine)
        assert not report.stalled
        # Byzantine or lossy serving may retry slots, but the committed
        # sequence never deviates from arrival order.
        assert report.log_digest == baseline.log_digest
        assert report.digest == baseline.digest
        assert report.digests_agree

    def test_crash_scenario_with_crash_tolerant_algorithm(self, baseline):
        config = ServeConfig(
            algorithm="paxos", n=5, b=0, f=2, scenario="crash_storm",
            batch=4, depth=2, seed=5,
        )
        report = run_serve(config, WORKLOAD)
        assert not report.stalled
        assert report.log_digest == baseline.log_digest

    def test_counter_machine_replicates(self):
        arrivals = [(0.1 * i, ("add", i)) for i in range(1, 13)]
        config = ServeConfig(n=4, b=1, batch=4, depth=3, seed=2)
        report = run_serve(
            config,
            arrivals=arrivals,
            machine_factory=CounterMachine,
        )
        assert report.committed_commands == 12
        assert report.digests_agree


class TestBatching:
    def test_batch_cap_respected(self):
        report = _serve("fault-free", batch=4, depth=2)
        sizes = report.telemetry._histograms["smr.batch_size"]
        assert sizes and max(sizes) <= 4

    def test_bytes_cap_splits_batches(self):
        commands = [(0.0, ("set", f"key{i}", "x" * 40)) for i in range(6)]
        config = ServeConfig(n=4, b=1, batch=100, batch_bytes=120, seed=1)
        report = run_serve(config, arrivals=commands)
        assert report.committed_commands == 6
        # ~60-byte commands under a 120-byte cap: at most 2 per slot.
        assert report.slots_committed >= 3

    def test_bytes_cap_never_starves_a_command(self):
        # A single command larger than the cap still ships (alone).
        commands = [(0.0, ("set", "k", "v" * 500))]
        config = ServeConfig(n=4, b=1, batch=8, batch_bytes=16, seed=1)
        report = run_serve(config, arrivals=commands)
        assert report.committed_commands == 1
        assert report.slots_committed == 1


class TestPipelining:
    def test_deeper_pipeline_fewer_simulated_units(self):
        shallow = _serve("fault-free", batch=1, depth=1)
        deep = _serve("fault-free", batch=1, depth=4)
        assert deep.simulated_duration < shallow.simulated_duration
        assert deep.log_digest == shallow.log_digest

    def test_batching_reduces_slots(self):
        single = _serve("fault-free", batch=1, depth=2)
        batched = _serve("fault-free", batch=16, depth=2)
        assert batched.slots_committed < single.slots_committed
        assert batched.committed_commands == single.committed_commands

    def test_latency_improves_with_batching_and_pipelining(self):
        base = _serve("fault-free", batch=1, depth=1)
        fast = _serve("fault-free", batch=16, depth=4)
        assert fast.latency["p99"] < base.latency["p99"]


class TestServeReport:
    def test_latency_percentiles_present(self):
        report = _serve("fault-free", batch=8, depth=2)
        for column in ("count", "min", "max", "mean", "p50", "p95", "p99"):
            assert column in report.latency
        assert (
            report.latency["p50"]
            <= report.latency["p95"]
            <= report.latency["p99"]
            <= report.latency["max"]
        )

    def test_row_is_flat_and_wall_volatile(self):
        row = _serve("fault-free", batch=8, depth=2).to_row()
        assert row["algorithm"] == "pbft"
        assert row["latency_p99"] is not None
        assert "_wall_seconds" in row  # stripped by row_to_json
        assert "telemetry" not in row

    def test_counters_observed(self):
        report = _serve("fault-free", batch=8, depth=2)
        counters = report.telemetry.counters
        assert counters["smr.slots"] == report.slots_committed
        assert counters["smr.commands"] == report.committed_commands
        assert counters["smr.messages"] > 0
        assert counters["smr.rounds"] > 0

    def test_stall_reported_not_raised(self):
        # One attempt under heavy loss with a tiny horizon cannot decide.
        config = ServeConfig(
            n=4, b=1, scenario="lossy_channel", batch=2, depth=2,
            seed=5, max_attempts=1, max_phases=1,
        )
        report = run_serve(config, WORKLOAD)
        assert report.stalled
        assert report.committed_commands < report.offered
        assert report.telemetry.counters["smr.stalled_slots"] == 1


class TestSweep:
    def test_rows_cover_the_grid(self, tmp_path):
        out = tmp_path / "serve.jsonl"
        rows = sweep_serve(
            ServeConfig(n=4, b=1, batch=4, depth=2, seed=9),
            WorkloadSpec(clients=2, rate=40.0, duration=0.5, seed=9),
            rates=(20.0, 40.0),
            scenarios=("fault-free", "worst_case"),
            out=out,
        )
        assert len(rows) == 4
        assert {row["status"] for row in rows} == {"ok"}
        assert all(row["digests_agree"] for row in rows)
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 4
        assert "_wall_seconds" not in lines[0]

    def test_inapplicable_cells_become_rows(self):
        rows = sweep_serve(
            ServeConfig(algorithm="pbft", n=7, b=2, f=2, seed=1),
            WorkloadSpec(clients=2, rate=20.0, duration=0.5, seed=1),
            rates=(20.0,),
            scenarios=("fault-free",),
        )
        assert rows[0]["status"] == "inapplicable"

    def test_cells_are_order_independent(self):
        config = ServeConfig(n=4, b=1, batch=4, depth=2, seed=9)
        workload = WorkloadSpec(clients=2, rate=40.0, duration=0.5, seed=9)
        forward = sweep_serve(config, workload, rates=(20.0, 40.0),
                              scenarios=("fault-free",))
        backward = sweep_serve(config, workload, rates=(40.0, 20.0),
                               scenarios=("fault-free",))

        def canonical(rows):
            # Wall-clock-derived columns vary run to run; everything else
            # must be byte-identical at any sweep order.
            return sorted(
                (
                    {
                        key: value
                        for key, value in row.items()
                        if key != "throughput" and not key.startswith("_")
                    }
                    for row in rows
                ),
                key=lambda row: row["cell"],
            )

        assert canonical(forward) == canonical(backward)
