"""Replicated service: repeated consensus end to end."""

import pytest

from repro.algorithms import build_paxos, build_pbft
from repro.smr.machine import KeyValueStore
from repro.smr.replica import ReplicatedService


class TestBenignService:
    def test_commands_apply_identically_everywhere(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", 1))
        service.submit(("set", "y", 2))
        service.submit(("del", "x"))
        report = service.run_until_drained()
        assert report.slots_committed == 3
        assert report.digests_agree
        for machine in service.machines.values():
            assert machine.get("x") is None
            assert machine.get("y") == 2

    def test_logs_identical(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "a", 1))
        service.submit(("set", "b", 2))
        service.run_until_drained()
        logs = [
            [entry.command for entry in log.committed_prefix()]
            for log in service.logs.values()
        ]
        assert all(log == logs[0] for log in logs)

    def test_divergent_submissions_still_converge(self):
        # Different clients talk to different replicas: consensus linearizes.
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", "from-0"), to=0)
        service.submit(("set", "x", "from-1"), to=1)
        report = service.run_until_drained()
        assert report.digests_agree
        values = {machine.get("x") for machine in service.machines.values()}
        assert len(values) == 1
        assert values <= {"from-0", "from-1"}


class TestByzantineService:
    def test_pbft_replication_under_attack(self):
        service = ReplicatedService(
            build_pbft(4), KeyValueStore, byzantine={3: "equivocator"}
        )
        service.submit(("set", "k", "v"))
        service.submit(("set", "k2", "v2"))
        report = service.run_until_drained()
        assert report.slots_committed == 2
        assert report.digests_agree
        for machine in service.machines.values():
            assert machine.get("k") == "v"


class _LegacyService(ReplicatedService):
    """The pre-migration slot driver: legacy ``run_consensus`` per slot.

    Identical queue/gossip/commit logic (inherited); only the consensus
    call differs — the deprecated full-trace wrapper instead of the
    kernel's metrics-mode ``run_instance``.  The parity test below pins
    that the migration changed *how* slots execute, not *what* they
    decide or report.
    """

    def run_slot(self):
        from repro.core.run import run_consensus
        from repro.smr.log import LogEntry

        self._gossip()
        proposals = self._proposals()
        outcome = run_consensus(
            self._spec.parameters,
            proposals,
            config=self._spec.config,
            byzantine=self._byzantine,
            max_phases=self._max_phases,
        )
        if not outcome.decisions:
            return None
        values = outcome.decided_values
        assert len(values) == 1
        (command,) = values
        slot = min(log.next_slot for log in self.logs.values())
        entry = LogEntry(
            slot=slot, command=command, phases=outcome.phases_to_last_decision
        )
        self._committed.add(command)
        for pid in self._honest:
            self.logs[pid].commit(entry)
            if command != ("noop",):
                self.machines[pid].apply(command)
            queue = self._pending[pid]
            if command in queue:
                queue.remove(command)
        trace = outcome.result.trace
        self._stats["phases"] += outcome.phases_to_last_decision or 0
        self._stats["rounds"] += trace.rounds_executed
        self._stats["messages"] += trace.total_messages_sent
        return entry


class TestLegacyParity:
    """The kernel-path service matches a legacy run_consensus replay."""

    COMMANDS = [
        ("set", "x", 1),
        ("set", "y", 2),
        ("set", "x", 3),
        ("del", "y"),
        ("set", "z", "zz"),
    ]

    def _drive(self, service):
        for command in self.COMMANDS:
            service.submit(command)
        report = service.run_until_drained()
        log = next(iter(service.logs.values()))
        commands = [entry.command for entry in log.committed_prefix()]
        phases = [entry.phases for entry in log.committed_prefix()]
        digest = next(iter(service.machines.values())).digest()
        return report, commands, phases, digest

    @pytest.mark.parametrize(
        "build",
        [
            lambda: (build_paxos(3), {}),
            lambda: (build_pbft(4), {3: "equivocator"}),
            lambda: (build_pbft(4), {3: "silent"}),
        ],
        ids=["paxos-benign", "pbft-equivocator", "pbft-silent"],
    )
    def test_reports_and_logs_identical(self, build):
        spec, byzantine = build()
        new = ReplicatedService(spec, KeyValueStore, byzantine=byzantine)
        old = _LegacyService(spec, KeyValueStore, byzantine=byzantine)
        new_report, new_commands, new_phases, new_digest = self._drive(new)
        old_report, old_commands, old_phases, old_digest = self._drive(old)
        assert new_report == old_report
        assert new_commands == old_commands
        assert new_phases == old_phases
        assert new_digest == old_digest


class TestReport:
    def test_phases_per_slot(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", 1))
        report = service.run_until_drained()
        assert report.phases_per_slot >= 1.0
        assert report.total_messages > 0

    def test_empty_service_noop(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        report = service.run_until_drained()
        assert report.slots_committed == 0
        assert report.phases_per_slot == 0.0
