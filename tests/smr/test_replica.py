"""Replicated service: repeated consensus end to end."""

import pytest

from repro.algorithms import build_paxos, build_pbft
from repro.smr.machine import KeyValueStore
from repro.smr.replica import ReplicatedService


class TestBenignService:
    def test_commands_apply_identically_everywhere(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", 1))
        service.submit(("set", "y", 2))
        service.submit(("del", "x"))
        report = service.run_until_drained()
        assert report.slots_committed == 3
        assert report.digests_agree
        for machine in service.machines.values():
            assert machine.get("x") is None
            assert machine.get("y") == 2

    def test_logs_identical(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "a", 1))
        service.submit(("set", "b", 2))
        service.run_until_drained()
        logs = [
            [entry.command for entry in log.committed_prefix()]
            for log in service.logs.values()
        ]
        assert all(log == logs[0] for log in logs)

    def test_divergent_submissions_still_converge(self):
        # Different clients talk to different replicas: consensus linearizes.
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", "from-0"), to=0)
        service.submit(("set", "x", "from-1"), to=1)
        report = service.run_until_drained()
        assert report.digests_agree
        values = {machine.get("x") for machine in service.machines.values()}
        assert len(values) == 1
        assert values <= {"from-0", "from-1"}


class TestByzantineService:
    def test_pbft_replication_under_attack(self):
        service = ReplicatedService(
            build_pbft(4), KeyValueStore, byzantine={3: "equivocator"}
        )
        service.submit(("set", "k", "v"))
        service.submit(("set", "k2", "v2"))
        report = service.run_until_drained()
        assert report.slots_committed == 2
        assert report.digests_agree
        for machine in service.machines.values():
            assert machine.get("k") == "v"


class TestReport:
    def test_phases_per_slot(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        service.submit(("set", "x", 1))
        report = service.run_until_drained()
        assert report.phases_per_slot >= 1.0
        assert report.total_messages > 0

    def test_empty_service_noop(self):
        service = ReplicatedService(build_paxos(3), KeyValueStore)
        report = service.run_until_drained()
        assert report.slots_committed == 0
        assert report.phases_per_slot == 0.0
