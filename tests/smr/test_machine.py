"""State machines: determinism and command semantics."""

import pytest

from repro.smr.machine import CounterMachine, KeyValueStore


class TestKeyValueStore:
    def test_set_get(self):
        kv = KeyValueStore()
        kv.apply(("set", "x", 1))
        assert kv.apply(("get", "x")) == 1
        assert kv.get("x") == 1

    def test_get_missing(self):
        assert KeyValueStore().apply(("get", "nope")) is None

    def test_delete(self):
        kv = KeyValueStore()
        kv.apply(("set", "x", 1))
        assert kv.apply(("del", "x")) == 1
        assert kv.get("x") is None
        assert kv.apply(("del", "x")) is None

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply(("frobnicate", "x"))

    def test_malformed_command(self):
        with pytest.raises(ValueError):
            KeyValueStore().apply("not-a-tuple")

    def test_digest_tracks_state(self):
        a, b = KeyValueStore(), KeyValueStore()
        assert a.digest() == b.digest()
        a.apply(("set", "x", 1))
        assert a.digest() != b.digest()
        b.apply(("set", "x", 1))
        assert a.digest() == b.digest()

    def test_digest_order_independent(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.apply(("set", "x", 1))
        a.apply(("set", "y", 2))
        b.apply(("set", "y", 2))
        b.apply(("set", "x", 1))
        assert a.digest() == b.digest()

    def test_len(self):
        kv = KeyValueStore()
        kv.apply(("set", "x", 1))
        kv.apply(("set", "y", 2))
        assert len(kv) == 2


class TestCounterMachine:
    def test_add_and_reset(self):
        counter = CounterMachine()
        assert counter.apply(("add", 5)) == 5
        assert counter.apply(("add", -2)) == 3
        assert counter.apply(("reset",)) == 0

    def test_digest(self):
        a, b = CounterMachine(), CounterMachine()
        a.apply(("add", 1))
        assert a.digest() != b.digest()

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            CounterMachine().apply(("mul", 2))
