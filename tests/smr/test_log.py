"""Replicated log semantics."""

import pytest

from repro.smr.log import LogEntry, ReplicatedLog


def test_commit_and_read():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("set", "x", 1)))
    assert log.entry(0).command == ("set", "x", 1)
    assert log.entry(1) is None


def test_conflicting_commit_rejected():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    with pytest.raises(ValueError, match="already committed"):
        log.commit(LogEntry(0, ("b",)))


def test_idempotent_commit_ok():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    log.commit(LogEntry(0, ("a",)))  # same command: fine
    assert len(log) == 1


def test_next_slot():
    log = ReplicatedLog()
    assert log.next_slot == 0
    log.commit(LogEntry(0, ("a",)))
    assert log.next_slot == 1
    log.commit(LogEntry(5, ("f",)))
    assert log.next_slot == 6


def test_committed_prefix_stops_at_gap():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    log.commit(LogEntry(1, ("b",)))
    log.commit(LogEntry(3, ("d",)))  # gap at 2
    prefix = [entry.command for entry in log.committed_prefix()]
    assert prefix == [("a",), ("b",)]


def test_phases_metadata():
    entry = LogEntry(0, ("a",), phases=2)
    assert entry.phases == 2


class TestOutOfOrderCommit:
    """Regression: both watermarks stay correct under pipelined commits.

    ``next_slot`` used to re-scan ``max(slots)`` on every read, which made
    service loops quadratic in committed slots; the incremental watermarks
    must agree with the scan under any commit order.
    """

    def test_gap_then_fill_advances_prefix(self):
        log = ReplicatedLog()
        log.commit(LogEntry(2, ("c",)))
        log.commit(LogEntry(1, ("b",)))
        assert log.prefix_length == 0  # slot 0 still missing
        assert log.next_slot == 3
        log.commit(LogEntry(0, ("a",)))
        # Filling the gap walks across the buffered slots in one step.
        assert log.prefix_length == 3
        assert [e.command for e in log.committed_prefix()] == [
            ("a",), ("b",), ("c",),
        ]

    def test_reverse_order_commit(self):
        log = ReplicatedLog()
        for slot in reversed(range(50)):
            log.commit(LogEntry(slot, (slot,)))
            assert log.next_slot == 50
        assert log.prefix_length == 50

    def test_interleaved_order_matches_scan(self):
        import random

        rng = random.Random(7)
        slots = list(range(200))
        rng.shuffle(slots)
        log = ReplicatedLog()
        committed = set()
        for slot in slots:
            log.commit(LogEntry(slot, (slot,)))
            committed.add(slot)
            # The incremental watermarks equal the O(n) definitions.
            assert log.next_slot == max(committed) + 1
            prefix = 0
            while prefix in committed:
                prefix += 1
            assert log.prefix_length == prefix
        assert [e.command for e in log.committed_prefix()] == [
            (slot,) for slot in range(200)
        ]

    def test_idempotent_recommit_does_not_move_watermarks(self):
        log = ReplicatedLog()
        log.commit(LogEntry(0, ("a",)))
        log.commit(LogEntry(2, ("c",)))
        before = (log.next_slot, log.prefix_length, len(log))
        log.commit(LogEntry(0, ("a",)))
        log.commit(LogEntry(2, ("c",)))
        assert (log.next_slot, log.prefix_length, len(log)) == before
