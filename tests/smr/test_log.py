"""Replicated log semantics."""

import pytest

from repro.smr.log import LogEntry, ReplicatedLog


def test_commit_and_read():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("set", "x", 1)))
    assert log.entry(0).command == ("set", "x", 1)
    assert log.entry(1) is None


def test_conflicting_commit_rejected():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    with pytest.raises(ValueError, match="already committed"):
        log.commit(LogEntry(0, ("b",)))


def test_idempotent_commit_ok():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    log.commit(LogEntry(0, ("a",)))  # same command: fine
    assert len(log) == 1


def test_next_slot():
    log = ReplicatedLog()
    assert log.next_slot == 0
    log.commit(LogEntry(0, ("a",)))
    assert log.next_slot == 1
    log.commit(LogEntry(5, ("f",)))
    assert log.next_slot == 6


def test_committed_prefix_stops_at_gap():
    log = ReplicatedLog()
    log.commit(LogEntry(0, ("a",)))
    log.commit(LogEntry(1, ("b",)))
    log.commit(LogEntry(3, ("d",)))  # gap at 2
    prefix = [entry.command for entry in log.committed_prefix()]
    assert prefix == [("a",), ("b",)]


def test_phases_metadata():
    entry = LogEntry(0, ("a",), phases=2)
    assert entry.phases == 2
