"""Simulated signature service: unforgeability invariants."""

import pytest

from repro.core.types import FaultModel
from repro.network.signatures import Signature, SignatureError, SignatureService


@pytest.fixture
def service():
    return SignatureService(FaultModel(4, 1, 0), seed=1)


def test_sign_verify_roundtrip(service):
    key = service.issue_key(0)
    sig = service.sign(0, key, ("payload", 7))
    assert service.verify(("payload", 7), sig)


def test_wrong_payload_fails(service):
    key = service.issue_key(0)
    sig = service.sign(0, key, "original")
    assert not service.verify("tampered", sig)


def test_wrong_key_cannot_sign_for_other(service):
    key3 = service.issue_key(3)  # the Byzantine process's own key
    with pytest.raises(SignatureError):
        service.sign(0, key3, "forged-as-0")


def test_relabelled_signature_fails(service):
    key3 = service.issue_key(3)
    sig = service.sign(3, key3, "payload")
    forged = Signature(signer=0, tag=sig.tag)
    assert not service.verify("payload", forged)


def test_key_issued_once(service):
    service.issue_key(2)
    with pytest.raises(SignatureError):
        service.issue_key(2)


def test_verify_rejects_garbage(service):
    assert not service.verify("payload", "not-a-signature")
    assert not service.verify("payload", Signature(signer=99, tag=b"x"))


def test_different_seeds_different_tags():
    model = FaultModel(4, 1, 0)
    a = SignatureService(model, seed=1)
    b = SignatureService(model, seed=2)
    sig_a = a.sign(0, a.issue_key(0), "m")
    sig_b = b.sign(0, b.issue_key(0), "m")
    assert sig_a.tag != sig_b.tag
