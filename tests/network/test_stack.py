"""The full stack: consensus over implemented Pcons."""

import pytest

from repro.algorithms import build_fab_paxos, build_mqb, build_pbft
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.selector import RotatingSubsetSelector
from repro.core.types import FaultModel
from repro.network.stack import run_with_pcons_stack
from repro.network.wic import (
    AuthenticatedCoordinatorEcho,
    SignatureFreeCoordinatorEcho,
)
from repro.rounds.schedule import GoodBadSchedule


def values_for(model):
    return {
        pid: f"v{pid % 2}" for pid in model.processes if pid != model.n - 1
    }


@pytest.mark.parametrize("builder,n", [(build_pbft, 4), (build_mqb, 5), (build_fab_paxos, 6)])
@pytest.mark.parametrize(
    "wic_cls", [AuthenticatedCoordinatorEcho, SignatureFreeCoordinatorEcho]
)
def test_algorithms_decide_over_implemented_pcons(builder, n, wic_cls):
    spec = builder(n)
    model = spec.parameters.model
    outcome = run_with_pcons_stack(
        spec.parameters,
        values_for(model),
        wic_cls(model),
        byzantine={model.n - 1: "equivocator"},
    )
    assert outcome.agreement_holds
    assert outcome.all_correct_decided
    assert outcome.pcons_held_in_phase(1)


def test_round_cost_difference():
    """Authenticated Pcons: 2 micro-rounds; signature-free: 3 (Section 2.2)."""
    spec = build_pbft(4)
    model = spec.parameters.model
    values = {pid: f"v{pid % 2}" for pid in model.processes}
    auth = run_with_pcons_stack(
        spec.parameters, values, AuthenticatedCoordinatorEcho(model)
    )
    free = run_with_pcons_stack(
        spec.parameters, values, SignatureFreeCoordinatorEcho(model)
    )
    assert auth.micro_rounds_used == 4  # 2 (Pcons) + validation + decision
    assert free.micro_rounds_used == 5  # 3 (Pcons) + validation + decision


def test_byzantine_coordinator_phase_recovers_later():
    """With the Byzantine process as phase-1 coordinator, Pcons may fail in
    phase 1 but the rotation reaches a correct coordinator and decides."""
    spec = build_pbft(4)
    model = spec.parameters.model
    values = {pid: f"v{pid % 2}" for pid in (1, 2, 3)}
    outcome = run_with_pcons_stack(
        spec.parameters,
        values,
        SignatureFreeCoordinatorEcho(model),
        byzantine={0: "equivocator"},  # process 0 coordinates phase 1
        max_phases=6,
    )
    assert outcome.agreement_holds
    assert outcome.all_correct_decided


def test_bad_periods_delay_but_do_not_break():
    spec = build_pbft(4)
    model = spec.parameters.model
    outcome = run_with_pcons_stack(
        spec.parameters,
        values_for(model),
        SignatureFreeCoordinatorEcho(model),
        byzantine={3: "equivocator"},
        schedule=GoodBadSchedule.good_after(8),
        seed=4,
        max_phases=12,
    )
    assert outcome.agreement_holds
    assert outcome.all_correct_decided
    assert outcome.micro_rounds_used > 5  # needed more than one clean phase


def test_requires_pi_selector():
    model = FaultModel(9, 1, 0)
    params = build_class_parameters(
        AlgorithmClass.CLASS_2, model, selector=RotatingSubsetSelector(model)
    )
    with pytest.raises(ValueError, match="all-processes"):
        run_with_pcons_stack(
            params,
            {pid: "v" for pid in model.processes},
            AuthenticatedCoordinatorEcho(model),
        )


def test_requires_f_zero():
    model = FaultModel(7, 1, 1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    with pytest.raises(ValueError, match="f = 0"):
        run_with_pcons_stack(
            params,
            {pid: "v" for pid in model.processes},
            AuthenticatedCoordinatorEcho(model),
        )
