"""Pcons implementations: echo protocols out of Pgood."""

import pytest

from repro.core.types import FaultModel
from repro.network.wic import (
    AuthenticatedCoordinatorEcho,
    SignatureFreeCoordinatorEcho,
    WicAdversaryMode,
)
from repro.rounds.base import RunContext
from repro.rounds.policies import deliver_to_byzantine, faithful_delivery


def pgood_deliver(ctx):
    """A micro-deliver realizing a good (synchronous) period."""

    def deliver(outbound):
        matrix = faithful_delivery(outbound)
        deliver_to_byzantine(matrix, outbound, ctx)
        return matrix

    return deliver


@pytest.fixture
def model():
    return FaultModel(4, 1, 0)


def correct_vectors(result, ctx):
    return [
        tuple(sorted(result.get(pid, {}).items())) for pid in sorted(ctx.correct)
    ]


class TestAuthenticatedEcho:
    def test_round_cost(self, model):
        assert AuthenticatedCoordinatorEcho.rounds == 2

    def test_correct_coordinator_gives_identical_vectors(self, model):
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = AuthenticatedCoordinatorEcho(model)
        inputs = {pid: f"m{pid}" for pid in range(4)}
        # Phase 1 → coordinator 0 (correct).
        result = wic.execute(1, inputs, pgood_deliver(ctx), ctx)
        vectors = correct_vectors(result, ctx)
        assert all(v == vectors[0] for v in vectors)
        assert dict(vectors[0]) == inputs  # everything relayed faithfully

    def test_byzantine_coordinator_may_split_but_not_forge(self, model):
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = AuthenticatedCoordinatorEcho(
            model, adversary_mode=WicAdversaryMode.EQUIVOCATE
        )
        inputs = {pid: f"m{pid}" for pid in range(4)}
        # Phase 4 → coordinator 3 (Byzantine): vectors may differ …
        result = wic.execute(4, inputs, pgood_deliver(ctx), ctx)
        for pid in ctx.correct:
            for sender, payload in result.get(pid, {}).items():
                # … but every delivered entry is a genuinely signed payload.
                assert payload == inputs[sender]

    def test_silent_byzantine_coordinator_starves_the_phase(self, model):
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = AuthenticatedCoordinatorEcho(
            model, adversary_mode=WicAdversaryMode.SILENT
        )
        inputs = {pid: f"m{pid}" for pid in range(4)}
        result = wic.execute(4, inputs, pgood_deliver(ctx), ctx)
        assert all(not result.get(pid) for pid in ctx.correct)

    def test_rotation_covers_all_processes(self, model):
        wic = AuthenticatedCoordinatorEcho(model)
        assert [wic.coordinator(phase) for phase in range(1, 6)] == [0, 1, 2, 3, 0]


class TestSignatureFreeEcho:
    def test_round_cost(self, model):
        assert SignatureFreeCoordinatorEcho.rounds == 3

    def test_requires_n_gt_3b(self):
        with pytest.raises(ValueError, match="n > 3b"):
            SignatureFreeCoordinatorEcho(FaultModel(3, 1, 0))

    def test_correct_coordinator_gives_identical_vectors(self, model):
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = SignatureFreeCoordinatorEcho(model)
        inputs = {pid: f"m{pid}" for pid in range(4)}
        result = wic.execute(1, inputs, pgood_deliver(ctx), ctx)
        vectors = correct_vectors(result, ctx)
        assert all(v == vectors[0] for v in vectors)
        assert dict(vectors[0]) == inputs

    def test_byzantine_coordinator_cannot_make_correct_accept_conflicts(
        self, model
    ):
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = SignatureFreeCoordinatorEcho(
            model, adversary_mode=WicAdversaryMode.EQUIVOCATE
        )
        inputs = {pid: f"m{pid}" for pid in range(4)}
        result = wic.execute(4, inputs, pgood_deliver(ctx), ctx)
        # Accepted entries at different correct processes never conflict:
        # two n−2b quorums of echoes intersect in an honest process.
        for sender in range(4):
            accepted = {
                result[pid][sender]
                for pid in ctx.correct
                if sender in result.get(pid, {})
            }
            assert len(accepted) <= 1

    def test_byzantine_echoers_cannot_inject(self, model):
        # Even with the Byzantine following the protocol as echoer, it
        # cannot make a never-sent entry reach the n − 2b threshold.
        ctx = RunContext(model, byzantine=frozenset({3}))
        wic = SignatureFreeCoordinatorEcho(
            model, adversary_mode=WicAdversaryMode.FOLLOW
        )
        inputs = {pid: f"m{pid}" for pid in range(3)}  # Byzantine sends nothing
        result = wic.execute(1, inputs, pgood_deliver(ctx), ctx)
        for pid in ctx.correct:
            assert 3 not in result.get(pid, {})
