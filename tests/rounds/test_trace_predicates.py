"""Trace-level predicate recording: the engine observes what policies do."""

import random

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import run_consensus
from repro.core.types import FaultModel, RoundKind
from repro.rounds.policies import GoodBadPolicy, ReliablePolicy, SilentPolicy
from repro.rounds.schedule import GoodBadSchedule


def run_with(policy, max_phases=4, model=None):
    model = model or FaultModel(4, 1, 0)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    return run_consensus(
        params,
        {pid: f"v{pid % 2}" for pid in range(3)},
        byzantine={3: "equivocator"},
        policy=policy,
        max_phases=max_phases,
    )


def test_reliable_policy_records_pcons_on_selection_rounds():
    outcome = run_with(ReliablePolicy())
    for record in outcome.result.trace.records:
        assert record.pgood
        if record.info.kind is RoundKind.SELECTION:
            assert record.pcons


def test_good_bad_schedule_reflected_in_trace():
    schedule = GoodBadSchedule.good_after(4)
    outcome = run_with(
        GoodBadPolicy(schedule, rng=random.Random(0)), max_phases=6
    )
    for record in outcome.result.trace.records:
        if record.info.number >= 4:
            assert record.pgood, record.info
        if (
            record.info.number >= 4
            and record.info.kind is RoundKind.SELECTION
        ):
            assert record.pcons, record.info


def test_silent_policy_records_no_predicates():
    outcome = run_with(SilentPolicy(), max_phases=2)
    for record in outcome.result.trace.records:
        assert not record.pgood
        assert not record.prel
        assert record.delivered_count <= record.sent_count


def test_good_phase_detection_via_trace():
    """The paper's 'good phase': Pcons in the selection round, Pgood after.

    The trace makes good phases queryable — the first good phase is exactly
    where the run decides."""
    schedule = GoodBadSchedule.good_after(7)
    outcome = run_with(
        GoodBadPolicy(schedule, rng=random.Random(1)), max_phases=8
    )
    assert outcome.all_correct_decided
    records = outcome.result.trace.records
    by_phase = {}
    for record in records:
        by_phase.setdefault(record.info.phase, []).append(record)
    good_phases = [
        phase
        for phase, phase_records in by_phase.items()
        if len(phase_records) == 3
        and phase_records[0].pcons
        and all(r.pgood for r in phase_records)
    ]
    assert good_phases, "a good phase must exist after round 7"
    deciding_phase = min(d.phase for d in outcome.decisions.values())
    assert deciding_phase <= min(good_phases) or deciding_phase in good_phases


def test_prel_recorded_under_reliable_delivery():
    outcome = run_with(ReliablePolicy())
    # Full delivery trivially satisfies Prel in all-to-all rounds.
    for record in outcome.result.trace.records:
        if record.info.kind is not RoundKind.VALIDATION:
            assert record.prel
