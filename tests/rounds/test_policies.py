"""Delivery policies: predicate enforcement and adversarial delivery."""

import random

import pytest

from repro.core.types import FaultModel, RoundInfo, RoundKind
from repro.rounds.base import RunContext
from repro.rounds.policies import (
    AsyncPrelPolicy,
    GoodBadPolicy,
    LossyPolicy,
    ReliablePolicy,
    SilentPolicy,
    enforce_pcons,
    enforce_pgood,
    partition_behavior,
    random_drop_behavior,
)
from repro.rounds.predicates import check_pcons, check_pgood, check_prel
from repro.rounds.schedule import GoodBadSchedule

SEL = RoundInfo(1, 1, RoundKind.SELECTION)
DEC = RoundInfo(3, 1, RoundKind.DECISION)


def ctx_for(n=4, b=0, byz=()):
    return RunContext(FaultModel(n, b, 0), byzantine=frozenset(byz))


def all_to_all(n, payload_fn):
    return {s: {d: payload_fn(s) for d in range(n)} for s in range(n)}


class TestEnforcement:
    def test_pgood_is_faithful(self):
        ctx = ctx_for()
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = enforce_pgood(outbound, ctx)
        assert check_pgood(outbound, matrix, ctx.correct)
        assert matrix[2][3] == "m3"

    def test_pcons_collapses_equivocation(self):
        ctx = ctx_for(n=4, b=1, byz=[3])
        outbound = all_to_all(4, lambda s: f"m{s}")
        # Byzantine 3 equivocates:
        outbound[3] = {0: "lie-a", 1: "lie-b", 2: "lie-a", 3: "x"}
        matrix = enforce_pcons(outbound, ctx)
        assert check_pcons(outbound, matrix, ctx.correct)
        values = {matrix[p][3] for p in ctx.correct}
        assert len(values) == 1  # one canonical payload for sender 3

    def test_pcons_byzantine_receivers_see_raw_traffic(self):
        ctx = ctx_for(n=4, b=1, byz=[3])
        outbound = all_to_all(4, lambda s: f"m{s}")
        outbound[0] = {3: "secret", 1: "m0", 2: "m0", 0: "m0"}
        matrix = enforce_pcons(outbound, ctx)
        assert matrix[3][0] == "secret"

    def test_pcons_respects_restricted_audience(self):
        # Selection round addressed to {0, 1} only.
        ctx = ctx_for()
        outbound = {s: {0: f"m{s}", 1: f"m{s}"} for s in range(4)}
        matrix = enforce_pcons(outbound, ctx)
        assert set(matrix) == {0, 1}
        assert matrix[0] == matrix[1]


class TestReliablePolicy:
    def test_pcons_on_selection_rounds(self):
        ctx = ctx_for(n=4, b=1, byz=[3])
        policy = ReliablePolicy()
        outbound = all_to_all(4, lambda s: f"m{s}")
        outbound[3] = {d: f"lie{d}" for d in range(4)}
        matrix = policy.deliver(SEL, outbound, ctx)
        assert check_pcons(outbound, matrix, ctx.correct)

    def test_pgood_only_on_other_rounds(self):
        ctx = ctx_for(n=4, b=1, byz=[3])
        policy = ReliablePolicy()
        outbound = all_to_all(4, lambda s: f"m{s}")
        outbound[3] = {d: f"lie{d}" for d in range(4)}
        matrix = policy.deliver(DEC, outbound, ctx)
        assert check_pgood(outbound, matrix, ctx.correct)
        # Equivocation survives outside selection rounds.
        assert matrix[0][3] != matrix[1][3]


class TestGoodBadPolicy:
    def test_good_round_enforces(self):
        ctx = ctx_for()
        policy = GoodBadPolicy(GoodBadSchedule.good_after(2))
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = policy.deliver(RoundInfo(2, 1, RoundKind.DECISION), outbound, ctx)
        assert check_pgood(outbound, matrix, ctx.correct)

    def test_bad_round_may_drop(self):
        ctx = ctx_for()
        policy = GoodBadPolicy(
            GoodBadSchedule.never_good(),
            bad_behavior=random_drop_behavior(random.Random(1), drop_prob=1.0),
        )
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert all(not inbox for inbox in matrix.values())

    def test_partition_behavior(self):
        ctx = ctx_for()
        policy = GoodBadPolicy(
            GoodBadSchedule.never_good(),
            bad_behavior=partition_behavior([[0, 1], [2, 3]]),
        )
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert 0 in matrix[1] and 1 in matrix[0]
        assert 2 not in matrix[0] and 0 not in matrix[2]


class TestAsyncPrelPolicy:
    def test_prel_holds(self):
        model = FaultModel(5, 1, 0)
        ctx = RunContext(model, byzantine=frozenset({4}))
        policy = AsyncPrelPolicy(random.Random(2))
        outbound = all_to_all(5, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert check_prel(matrix, ctx.correct, model.n - model.b - model.f)

    def test_byzantine_receiver_gets_everything(self):
        model = FaultModel(5, 1, 0)
        ctx = RunContext(model, byzantine=frozenset({4}))
        policy = AsyncPrelPolicy(random.Random(2))
        outbound = all_to_all(5, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert len(matrix[4]) == 5

    def test_subsets_can_differ_between_receivers(self):
        model = FaultModel(6, 1, 1)  # minimum 4 of 6
        ctx = RunContext(model)
        policy = AsyncPrelPolicy(random.Random(0))
        outbound = all_to_all(6, lambda s: f"m{s}")
        seen = set()
        for _ in range(20):
            matrix = policy.deliver(DEC, outbound, ctx)
            seen.add(frozenset(matrix[0]))
        assert len(seen) > 1  # the adversary varies the chosen subsets


class TestLossyAndSilent:
    def test_lossy_bounds_probability(self):
        with pytest.raises(ValueError):
            LossyPolicy(random.Random(0), drop_prob=1.5)

    def test_lossy_zero_drop_is_faithful(self):
        ctx = ctx_for()
        policy = LossyPolicy(random.Random(0), drop_prob=0.0)
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert check_pgood(outbound, matrix, ctx.correct)

    def test_silent_delivers_nothing_to_honest(self):
        ctx = ctx_for(n=4, b=1, byz=[3])
        policy = SilentPolicy()
        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix = policy.deliver(DEC, outbound, ctx)
        assert all(pid == 3 for pid in matrix)


class TestRngThreading:
    """Per-run rng: policies own their stream and reseed deterministically."""

    BAD = RoundInfo(number=1, phase=1, kind=RoundKind.DECISION)

    def matrix_sizes(self, policy):
        outbound = all_to_all(6, lambda s: f"m{s}")
        ctx = ctx_for(n=6)
        return [
            sorted(
                (dest, sorted(inbox))
                for dest, inbox in policy.deliver(
                    self.BAD, outbound, ctx
                ).items()
            )
            for _ in range(5)
        ]

    def test_goodbad_reseed_replays_loss_stream(self):
        policy = GoodBadPolicy(
            GoodBadSchedule.never_good(), rng=random.Random(3)
        )
        first = self.matrix_sizes(policy)
        policy.reseed(3)
        assert self.matrix_sizes(policy) == first

    def test_lossy_reseed_replays_loss_stream(self):
        policy = LossyPolicy(random.Random(5), drop_prob=0.4)
        first = self.matrix_sizes(policy)
        policy.reseed(5)
        assert self.matrix_sizes(policy) == first

    def test_async_prel_reseed_replays_choices(self):
        policy = AsyncPrelPolicy(random.Random(7))
        first = self.matrix_sizes(policy)
        policy.reseed(7)
        assert self.matrix_sizes(policy) == first

    def test_policies_default_to_owned_rng(self):
        """No-rng construction must still be deterministic (seed 0), not
        draw from the module-level random."""
        assert self.matrix_sizes(LossyPolicy()) == self.matrix_sizes(
            LossyPolicy()
        )
        assert self.matrix_sizes(AsyncPrelPolicy()) == self.matrix_sizes(
            AsyncPrelPolicy()
        )


class TestDeliverCounted:
    """The counting contract: exact counts for declared delivery, fail-closed
    rescan for subclass overrides (which may do anything)."""

    def test_reliable_pgood_counts_zero(self):
        matrix, dropped = ReliablePolicy().deliver_counted(
            DEC, all_to_all(4, lambda s: f"m{s}"), ctx_for()
        )
        assert dropped == 0
        assert sum(map(len, matrix.values())) == 16

    def test_reliable_pcons_defers_to_rescan(self):
        _, dropped = ReliablePolicy().deliver_counted(
            SEL, all_to_all(4, lambda s: f"m{s}"), ctx_for()
        )
        assert dropped is None

    def test_exact_subset_policies_count_sent_minus_delivered(self):
        outbound = all_to_all(4, lambda s: f"m{s}")
        for policy in (
            LossyPolicy(random.Random(1), drop_prob=0.5),
            SilentPolicy(),
            AsyncPrelPolicy(random.Random(2)),
            GoodBadPolicy(GoodBadSchedule.never_good(), rng=random.Random(3)),
        ):
            matrix, dropped = policy.deliver_counted(DEC, outbound, ctx_for())
            assert dropped == 16 - sum(map(len, matrix.values()))
            assert dropped >= 0

    def test_subclass_override_is_honoured_and_rescanned(self):
        class Withholding(ReliablePolicy):
            def deliver(self, info, outbound, ctx):
                matrix = super().deliver(info, outbound, ctx)  # must not recurse
                matrix.pop(0, None)  # withhold process 0's whole inbox
                return matrix

        outbound = all_to_all(4, lambda s: f"m{s}")
        matrix, dropped = Withholding().deliver_counted(DEC, outbound, ctx_for())
        assert 0 not in matrix
        # The override voids the counting contract: fall back to the rescan.
        assert dropped is None

    def test_subclass_can_redeclare_the_counting_contract(self):
        class Faithful(ReliablePolicy):
            def deliver(self, info, outbound, ctx):
                return super().deliver(info, outbound, ctx)

        Faithful._counted_deliver = Faithful.deliver
        _, dropped = Faithful().deliver_counted(
            DEC, all_to_all(4, lambda s: f"m{s}"), ctx_for()
        )
        assert dropped == 0
