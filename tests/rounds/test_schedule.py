"""Good/bad period schedules."""

import pytest

from repro.rounds.schedule import GoodBadSchedule


def test_always_good():
    schedule = GoodBadSchedule.always_good()
    assert all(schedule.is_good(r) for r in range(1, 50))


def test_never_good():
    schedule = GoodBadSchedule.never_good()
    assert all(schedule.is_bad(r) for r in range(1, 50))


def test_good_after():
    schedule = GoodBadSchedule.good_after(5)
    assert schedule.is_bad(4)
    assert schedule.is_good(5)
    assert schedule.is_good(100)


def test_windows():
    schedule = GoodBadSchedule.windows([(3, 5), (9, 9)])
    assert schedule.is_bad(2)
    assert schedule.is_good(3)
    assert schedule.is_good(5)
    assert schedule.is_bad(6)
    assert schedule.is_good(9)
    assert schedule.is_bad(10)


def test_windows_rejects_inverted():
    with pytest.raises(ValueError):
        GoodBadSchedule.windows([(5, 3)])


def test_alternating():
    schedule = GoodBadSchedule.alternating(good_len=2, bad_len=3)
    pattern = [schedule.is_good(r) for r in range(1, 11)]
    assert pattern == [True, True, False, False, False] * 2


def test_alternating_validation():
    with pytest.raises(ValueError):
        GoodBadSchedule.alternating(0, 1)
    with pytest.raises(ValueError):
        GoodBadSchedule.alternating(1, -1)


def test_description_present():
    assert "good-after-3" in GoodBadSchedule.good_after(3).description
