"""Predicate checkers: Pgood, Pcons, Prel over delivery matrices."""

from repro.rounds.predicates import check_pcons, check_pgood, check_prel

CORRECT = {0, 1, 2}


def test_pgood_holds_on_faithful_delivery():
    outbound = {s: {d: f"m{s}" for d in CORRECT} for s in CORRECT}
    delivered = {d: {s: f"m{s}" for s in CORRECT} for d in CORRECT}
    assert check_pgood(outbound, delivered, CORRECT)


def test_pgood_fails_on_missing_message():
    outbound = {s: {d: f"m{s}" for d in CORRECT} for s in CORRECT}
    delivered = {d: {s: f"m{s}" for s in CORRECT} for d in CORRECT}
    del delivered[2][0]
    assert not check_pgood(outbound, delivered, CORRECT)


def test_pgood_fails_on_corrupted_message():
    outbound = {0: {1: "original"}}
    delivered = {1: {0: "tampered"}}
    assert not check_pgood(outbound, delivered, CORRECT)


def test_pgood_ignores_faulty_destinations():
    # Messages to processes outside the correct set may vanish.
    outbound = {0: {1: "m", 9: "m"}}
    delivered = {1: {0: "m"}}
    assert check_pgood(outbound, delivered, CORRECT)


def test_pgood_ignores_byzantine_senders():
    # Sender 9 is not correct: its deliveries are unconstrained.
    outbound = {0: {1: "m"}, 9: {1: "x", 2: "y"}}
    delivered = {1: {0: "m", 9: "x"}, 2: {}}
    assert check_pgood(outbound, delivered, CORRECT)


def test_pcons_requires_identical_vectors():
    outbound = {s: {d: f"m{s}" for d in CORRECT} for s in CORRECT}
    same = {s: f"m{s}" for s in CORRECT}
    delivered = {d: dict(same) for d in CORRECT}
    assert check_pcons(outbound, delivered, CORRECT)


def test_pcons_fails_on_diverging_byzantine_entry():
    outbound = {s: {d: f"m{s}" for d in CORRECT} for s in CORRECT}
    delivered = {d: {s: f"m{s}" for s in CORRECT} for d in CORRECT}
    delivered[0][9] = "byz-a"  # receiver 0 additionally hears 9
    assert check_pgood(outbound, delivered, CORRECT)
    assert not check_pcons(outbound, delivered, CORRECT)


def test_pcons_restricted_to_addressed_receivers():
    # Only receiver 1 is addressed (footnote-6 variant): 0 and 2 legitimately
    # receive nothing.
    outbound = {0: {1: "m0"}, 1: {1: "m1"}, 2: {1: "m2"}}
    delivered = {1: {0: "m0", 1: "m1", 2: "m2"}}
    assert check_pcons(outbound, delivered, CORRECT)


def test_pcons_vacuous_without_correct_traffic():
    assert check_pcons({}, {}, CORRECT)


def test_prel_counts_messages():
    delivered = {0: {1: "a", 2: "b"}, 1: {0: "c", 2: "d"}, 2: {0: "e", 1: "f"}}
    assert check_prel(delivered, CORRECT, minimum=2)
    assert not check_prel(delivered, CORRECT, minimum=3)


def test_prel_missing_receiver_counts_as_zero():
    delivered = {0: {1: "a", 2: "b"}}
    assert not check_prel(delivered, CORRECT, minimum=1)
