"""The lockstep engine: scheduling, crash handling, tracing."""

import pytest

from repro.core.types import FaultModel, RoundInfo, RoundKind
from repro.faults.crash import CrashEvent, CrashSchedule
from repro.rounds.base import RoundProcess, RunContext
from repro.rounds.engine import SyncEngine
from repro.rounds.policies import ReliablePolicy


class EchoProcess(RoundProcess):
    """Broadcasts its id each round and records everything received."""

    def __init__(self, pid, n):
        self.pid = pid
        self.n = n
        self.inboxes = []

    def send(self, info):
        return {dest: ("echo", self.pid, info.number) for dest in range(self.n)}

    def receive(self, info, received):
        self.inboxes.append(dict(received))


def round_info(r):
    return RoundInfo(r, (r + 2) // 3, RoundKind.DECISION)


def build_engine(n=3, **kwargs):
    model = FaultModel(n, 0, kwargs.pop("f", 1))
    processes = {pid: EchoProcess(pid, n) for pid in range(n)}
    engine = SyncEngine(
        model, processes, ReliablePolicy(), round_info, **kwargs
    )
    return engine, processes


class TestBasicExecution:
    def test_all_messages_delivered(self):
        engine, processes = build_engine()
        engine.run(2)
        for process in processes.values():
            assert len(process.inboxes) == 2
            assert set(process.inboxes[0]) == {0, 1, 2}

    def test_sender_identity_is_preserved(self):
        engine, processes = build_engine()
        engine.run(1)
        inbox = processes[0].inboxes[0]
        for sender, payload in inbox.items():
            assert payload[1] == sender  # no impersonation

    def test_trace_counts(self):
        engine, _ = build_engine()
        result = engine.run(3)
        assert result.rounds_executed == 3
        assert result.trace.total_messages_sent == 3 * 9
        assert result.trace.records[0].pgood

    def test_process_coverage_validated(self):
        model = FaultModel(3, 0, 1)
        with pytest.raises(ValueError, match="cover exactly"):
            SyncEngine(
                model,
                {0: EchoProcess(0, 3)},
                ReliablePolicy(),
                round_info,
            )

    def test_stop_when(self):
        engine, _ = build_engine()
        result = engine.run(10, stop_when=lambda trace: trace.rounds_executed >= 4)
        assert result.rounds_executed == 4

    def test_negative_max_rounds(self):
        engine, _ = build_engine()
        with pytest.raises(ValueError):
            engine.run(-1)


class TestCrashHandling:
    def test_clean_crash_delivers_final_round(self):
        schedule = CrashSchedule(
            FaultModel(3, 0, 1), [CrashEvent(0, 2)]
        )
        engine, processes = build_engine(crash_schedule=schedule)
        engine.run(3)
        # Round 2 messages from 0 still arrive; round 3 none.
        assert 0 in processes[1].inboxes[1]
        assert 0 not in processes[1].inboxes[2]

    def test_unclean_crash_drops_final_round(self):
        schedule = CrashSchedule(
            FaultModel(3, 0, 1), [CrashEvent(0, 2, frozenset())]
        )
        engine, processes = build_engine(crash_schedule=schedule)
        engine.run(3)
        assert 0 in processes[1].inboxes[0]
        assert 0 not in processes[1].inboxes[1]

    def test_partial_crash_delivery(self):
        schedule = CrashSchedule(
            FaultModel(3, 0, 1), [CrashEvent(0, 1, frozenset({1}))]
        )
        engine, processes = build_engine(crash_schedule=schedule)
        engine.run(1)
        assert 0 in processes[1].inboxes[0]
        assert 0 not in processes[2].inboxes[0]

    def test_crashed_process_stops_transitioning(self):
        schedule = CrashSchedule(FaultModel(3, 0, 1), [CrashEvent(0, 2)])
        engine, processes = build_engine(crash_schedule=schedule)
        engine.run(4)
        assert len(processes[0].inboxes) == 1  # only round 1

    def test_eventually_correct_excludes_doomed(self):
        schedule = CrashSchedule(FaultModel(3, 0, 1), [CrashEvent(0, 5)])
        engine, _ = build_engine(crash_schedule=schedule)
        assert engine.eventually_correct == frozenset({1, 2})

    def test_context_marks_crash(self):
        schedule = CrashSchedule(FaultModel(3, 0, 1), [CrashEvent(0, 1)])
        engine, _ = build_engine(crash_schedule=schedule)
        engine.run(2)
        assert 0 in engine.context.crashed


class TestRunContext:
    def test_byzantine_bounds(self):
        model = FaultModel(4, 1, 0)
        with pytest.raises(ValueError):
            RunContext(model, byzantine=frozenset({0, 1}))

    def test_out_of_range_byzantine(self):
        model = FaultModel(4, 1, 0)
        with pytest.raises(ValueError):
            RunContext(model, byzantine=frozenset({7}))

    def test_crash_cap(self):
        model = FaultModel(4, 0, 1)
        ctx = RunContext(model)
        ctx.mark_crashed(0)
        with pytest.raises(ValueError):
            ctx.mark_crashed(1)

    def test_correct_set(self):
        model = FaultModel(4, 1, 1)
        ctx = RunContext(model, byzantine=frozenset({3}))
        ctx.mark_crashed(0)
        assert ctx.correct == frozenset({1, 2})
        assert ctx.honest == frozenset({0, 1, 2})
        assert ctx.is_faulty(0) and ctx.is_faulty(3)
        assert not ctx.is_faulty(1)
