"""Cross-substrate integration scenarios.

Each test wires several subsystems together the way a downstream user
would: non-static selectors with the dynamic validator-election path,
Byzantine members *inside* the selector set, the Pcons stack under bad
periods, timed runs with crashes, and lemma checking over adversarial
multi-phase executions.
"""

import random

import pytest

from repro.analysis.lemmas import check_all_lemmas
from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import run_consensus
from repro.core.selector import RotatingSubsetSelector
from repro.core.types import FaultModel
from repro.faults.crash import CrashEvent, CrashSchedule
from repro.rounds.policies import GoodBadPolicy
from repro.rounds.schedule import GoodBadSchedule


class TestRotatingSubsetSelectors:
    """Section 4.2's Byzantine option: rotating sets of b + 1 validators.

    Exercises the dynamic paths of Algorithm 1 — line 15 (selector-set
    quorum) and line 21 (b + 1 matching validator announcements) — which
    static Π selectors optimize away.
    """

    def make_params(self, model):
        return build_class_parameters(
            AlgorithmClass.CLASS_2,
            model,
            selector=RotatingSubsetSelector(model, size=model.b + 1),
        )

    def test_decides_with_honest_selector_set(self):
        model = FaultModel(5, 1, 0)
        params = self.make_params(model)
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in range(4)},
            byzantine={4: "equivocator"},
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1  # phase-1 set {1, 2} honest

    def test_byzantine_validator_stalls_only_its_phase(self):
        model = FaultModel(5, 1, 0)
        params = self.make_params(model)
        # Process 1 sits in the phase-1 selector set {1, 2}: that phase
        # cannot validate (SL3 fails); phase 2's set {2, 3} succeeds.
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in (0, 2, 3, 4)},
            byzantine={1: "equivocator"},
            max_phases=6,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 2

    def test_silent_validator_phase_recovery(self):
        model = FaultModel(5, 1, 0)
        params = self.make_params(model)
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in (0, 2, 3, 4)},
            byzantine={1: "silent"},
            max_phases=6,
        )
        assert outcome.all_correct_decided

    def test_lemmas_hold_with_dynamic_selectors(self):
        model = FaultModel(5, 1, 0)
        params = self.make_params(model)
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in (0, 2, 3, 4)},
            byzantine={1: "adaptive-liar"},
            record_snapshots=True,
            max_phases=6,
        )
        assert outcome.all_correct_decided
        check_all_lemmas(outcome)


class TestCombinedFaultLoads:
    def test_byzantine_plus_crash(self):
        """b = 1 and f = 1 simultaneously: class 3 needs n > 3b + 2f = 5."""
        model = FaultModel(6, 1, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_3, model)
        schedule = CrashSchedule(model, [CrashEvent(0, 2, frozenset())])
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in range(5)},
            byzantine={5: "equivocator"},
            crash_schedule=schedule,
            max_phases=6,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert 0 not in outcome.decisions

    def test_class2_mixed_envelope(self):
        """Class 2 at n > 4b + 2f: n = 8 with b = 1, f = 1."""
        model = FaultModel(8, 1, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        schedule = CrashSchedule(model, [CrashEvent(0, 1)])
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in range(7)},
            byzantine={7: "high-ts-liar"},
            crash_schedule=schedule,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_class1_mixed_envelope(self):
        """Class 1 at n > 5b + 3f: n = 9 with b = 1, f = 1."""
        model = FaultModel(9, 1, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_1, model)
        schedule = CrashSchedule(model, [CrashEvent(2, 1, frozenset())])
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in range(8)},
            byzantine={8: "equivocator"},
            crash_schedule=schedule,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided


class TestStackUnderPartialSynchrony:
    def test_pcons_stack_with_alternating_schedule(self):
        from repro.algorithms import build_pbft
        from repro.network import SignatureFreeCoordinatorEcho, run_with_pcons_stack

        spec = build_pbft(4)
        model = spec.parameters.model
        outcome = run_with_pcons_stack(
            spec.parameters,
            {pid: f"v{pid % 2}" for pid in range(3)},
            SignatureFreeCoordinatorEcho(model),
            byzantine={3: "equivocator"},
            schedule=GoodBadSchedule.alternating(good_len=10, bad_len=3),
            seed=2,
            max_phases=12,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided


class TestTimedWithByzantine:
    def test_fab_timed_with_adversary_and_late_gst(self):
        from repro.algorithms import build_fab_paxos
        from repro.eventsim import (
            PartialSynchronyNetwork,
            UniformLatency,
            run_timed_consensus,
        )

        spec = build_fab_paxos(6)
        network = PartialSynchronyNetwork(
            UniformLatency(0.5, 2.0),
            gst=12.0,
            delta=2.0,
            pre_gst_delay_prob=0.7,
            seed=9,
        )
        outcome = run_timed_consensus(
            spec.parameters,
            {pid: f"v{pid % 2}" for pid in range(5)},
            network,
            round_duration=2.5,
            byzantine={5: "adaptive-liar"},
            max_phases=30,
        )
        assert outcome.agreement_holds
        assert outcome.all_decided
        assert outcome.last_decision_time > 12.0


class TestDeterminism:
    """Identical seeds must give byte-identical outcomes (debuggability)."""

    def run_once(self, seed):
        model = FaultModel(4, 1, 0)
        params = build_class_parameters(AlgorithmClass.CLASS_3, model)
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(5), rng=random.Random(seed)
        )
        outcome = run_consensus(
            params,
            {pid: f"v{pid % 2}" for pid in range(3)},
            byzantine={3: "equivocator"},
            policy=policy,
            max_phases=8,
        )
        return (
            tuple(sorted((pid, d.value) for pid, d in outcome.decisions.items())),
            outcome.rounds_to_last_decision,
            # Delivered counts expose the bad-period randomness (sent counts
            # are structural and identical across seeds).
            outcome.result.trace.total_messages_delivered,
        )

    def test_repeatable(self):
        assert self.run_once(3) == self.run_once(3)

    def test_seed_sensitivity(self):
        results = {self.run_once(seed) for seed in range(6)}
        assert len(results) > 1  # bad-period drops genuinely differ
