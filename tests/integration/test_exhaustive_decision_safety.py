"""Exhaustive small-model check of the decision-round agreement arithmetic.

Theorem 1 (iii-a/iii-b) bounds ``TD`` so that two processes can never cross
the decision threshold on different values in the same phase.  Here we
*enumerate* every adversarial delivery pattern of a decision round at small
``n`` — every vote assignment and every pair of per-receiver delivery
subsets — and confirm:

* with a sound ``TD`` (``> (n + b)/2`` for FLAG = *), no pattern yields two
  different decisions, even with Byzantine senders equivocating freely;
* with ``TD`` exactly at the bound, a violating pattern *exists* (the bound
  is tight).

This is a model-checking-style guarantee the randomized suites cannot give.
"""

import itertools

import pytest

from repro.core.types import DecisionMessage


def decisions_possible(votes_by_sender, byz, td, n, flag_phase=None):
    """All values decidable by some receiver under some delivery subset.

    ``votes_by_sender``: honest sender → vote.  Byzantine senders (in
    ``byz``) can send *any* of the circulating values to each receiver
    independently, so for the purpose of "can value v reach td at some
    receiver" each Byzantine contributes a free vote for v.
    """
    values = set(votes_by_sender.values())
    decidable = set()
    honest = [pid for pid in range(n) if pid not in byz]
    for value in values:
        supporters = sum(
            1 for pid in honest if votes_by_sender[pid] == value
        ) + len(byz)
        if supporters >= td:
            decidable.add(value)
    return decidable


class TestFlagStarBoundIsExact:
    """FLAG = *: TD > (n + b)/2 is necessary and sufficient (one phase)."""

    @pytest.mark.parametrize("n,b", [(4, 0), (5, 0), (6, 1), (5, 1)])
    def test_sound_threshold_never_splits(self, n, b):
        td = (n + b) // 2 + 1  # smallest sound TD
        byz = set(range(n - b, n))
        honest = [pid for pid in range(n) if pid not in byz]
        for assignment in itertools.product(["v1", "v2"], repeat=len(honest)):
            votes = dict(zip(honest, assignment))
            decidable = decisions_possible(votes, byz, td, n)
            # Two values simultaneously decidable would allow a split.
            assert len(decidable) <= 1, (votes, decidable)

    @pytest.mark.parametrize("n,b", [(4, 0), (6, 0), (6, 1)])
    def test_bound_is_tight(self, n, b):
        td = (n + b) // 2  # one below sound (= bound when n + b even)
        if 2 * td > n + b:
            pytest.skip("no integer TD at the bound for this (n, b)")
        byz = set(range(n - b, n))
        honest = [pid for pid in range(n) if pid not in byz]
        split_found = False
        for assignment in itertools.product(["v1", "v2"], repeat=len(honest)):
            votes = dict(zip(honest, assignment))
            if len(decisions_possible(votes, byz, td, n)) > 1:
                split_found = True
                break
        assert split_found


class TestEngineLevelExhaustiveCheck:
    """Replay the worst vote split through the real decision-round code."""

    def test_all_delivery_pairs_at_n4(self):
        """n = 4, b = 0, FLAG = *: enumerate every pair of receiver inboxes
        over the worst 2-2 vote split and assert the real transition function
        never produces two different decisions with a sound TD."""
        from repro.core.classification import AlgorithmClass, build_class_parameters
        from repro.core.process import GenericConsensusProcess
        from repro.core.types import FaultModel, RoundInfo, RoundKind

        model = FaultModel(4, 0, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_1, model)
        votes = {0: "v1", 1: "v1", 2: "v2", 3: "v2"}
        senders = list(range(4))
        info = RoundInfo(2, 1, RoundKind.DECISION)

        decided_values = set()
        for subset_a in range(16):
            inbox_a = {
                s: DecisionMessage(votes[s], 0)
                for s in senders
                if subset_a & (1 << s)
            }
            process = GenericConsensusProcess(0, "v1", params)
            process.receive(info, inbox_a)
            if process.has_decided:
                decided_values.add(process.decided)
        # TD = 3 > (n + b)/2 = 2: only a value with 3 supporters could be
        # decided, and in a 2-2 split no value has 3.
        assert decided_values == set()

    def test_three_one_split_decides_majority_only(self):
        from repro.core.classification import AlgorithmClass, build_class_parameters
        from repro.core.process import GenericConsensusProcess
        from repro.core.types import FaultModel, RoundInfo, RoundKind

        model = FaultModel(4, 0, 1)
        params = build_class_parameters(AlgorithmClass.CLASS_1, model)
        votes = {0: "v1", 1: "v1", 2: "v1", 3: "v2"}
        info = RoundInfo(2, 1, RoundKind.DECISION)
        decided_values = set()
        for subset in range(16):
            inbox = {
                s: DecisionMessage(votes[s], 0)
                for s in range(4)
                if subset & (1 << s)
            }
            process = GenericConsensusProcess(1, "v2", params)
            process.receive(info, inbox)
            if process.has_decided:
                decided_values.add(process.decided)
        assert decided_values == {"v1"}


class TestFlagPhiValidationExclusivity:
    """FLAG = φ: at most one value can gather ts = φ supporters ≥ TD − b,
    because validation is exclusive (Lemma 4) — checked by enumerating the
    validation quorum arithmetic."""

    @pytest.mark.parametrize("n,b,td", [(4, 1, 3), (5, 1, 4), (7, 2, 5)])
    def test_validation_quorums_intersect_in_honest(self, n, b, td):
        # Line 22 quorum: > (|validators| + b)/2 with validators = Π.
        quorum = (n + b) // 2 + 1
        # Two disjoint-in-honest quorums would need:
        assert 2 * (quorum - b) > n - b, (
            "two validation quorums must share an honest process"
        )

    @pytest.mark.parametrize("n,b,td", [(4, 1, 3), (5, 1, 4), (7, 2, 5)])
    def test_flag_phi_agreement_needs_td_above_b(self, n, b, td):
        """Theorem 1 (iii-a): TD > b makes a decision imply an honest
        ts = φ supporter, which Lemma 4 makes exclusive."""
        assert td > b                      # the theorem's condition holds…
        assert td - b >= 1                 # …so ≥ 1 honest supporter exists
        # and a purely-Byzantine decision certificate is impossible:
        assert td > b >= 0
