"""Constructive failures below the Table-1 bounds.

The library refuses to build below-bound parameters; with
``force_parameters`` we build them anyway and exhibit exactly the failures
Theorem 1 predicts — the empirical counterpart of the ``n`` and ``TD``
columns of Table 1.
"""

import pytest

from repro.analysis.resilience import force_parameters
from repro.core.flv_class1 import FLVClass1
from repro.core.flv_class2 import FLVClass2
from repro.core.run import run_consensus
from repro.core.types import FaultModel, Flag, RoundInfo, RoundKind
from repro.rounds.base import RunContext
from repro.rounds.policies import DeliveryPolicy, faithful_delivery


class SplitDecisionPolicy(DeliveryPolicy):
    """An adversarial schedule splitting the decision round.

    Selection rounds deliver nothing (votes stay at their initial values);
    in decision rounds the first half of the receivers hears only the first
    half of the senders, and vice versa.  Legal under asynchrony: no
    communication predicate is promised.
    """

    def deliver(self, info, outbound, ctx):
        if info.kind is not RoundKind.DECISION:
            return {}
        n = ctx.model.n
        half = n // 2
        matrix = {}
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                same_half = (sender < half) == (dest < half)
                if same_half:
                    matrix.setdefault(dest, {})[sender] = payload
        return matrix


class TestAgreementNeedsTdAboveHalf:
    """FLAG = * with TD ≤ (n + b)/2 loses agreement (Theorem 1, iii-b)."""

    def test_split_brain_decision(self):
        model = FaultModel(6, 0, 0)
        td = 3  # ≤ (n + b)/2 = 3: forbidden by the paper, forced here
        params = force_parameters(model, td, Flag.ANY, FLVClass1(model, td))
        values = {pid: ("v1" if pid < 3 else "v2") for pid in range(6)}
        outcome = run_consensus(
            params, values, policy=SplitDecisionPolicy(), max_phases=1
        )
        # Both halves reach their own TD: disagreement.
        assert not outcome.agreement_holds
        assert outcome.decided_values == {"v1", "v2"}

    def test_valid_td_resists_the_same_adversary(self):
        model = FaultModel(6, 0, 0)
        td = 4  # > (n + b)/2: the smallest sound threshold
        params = force_parameters(model, td, Flag.ANY, FLVClass1(model, td))
        values = {pid: ("v1" if pid < 3 else "v2") for pid in range(6)}
        outcome = run_consensus(
            params, values, policy=SplitDecisionPolicy(), max_phases=1
        )
        assert outcome.agreement_holds  # nobody can decide in a 3-3 split
        assert not outcome.decisions


class TestTerminationNeedsTdWithinCorrect:
    """TD > n − b − f can never be met by the correct processes alone."""

    def test_silent_byzantine_starves_decision(self):
        model = FaultModel(4, 1, 0)
        td = 4  # > n − b = 3: forbidden (Theorem 1, iv), forced here
        params = force_parameters(
            model, td, Flag.ANY, FLVClass1(model, td)
        )
        values = {pid: "v" for pid in range(3)}
        outcome = run_consensus(
            params, values, byzantine={3: "silent"}, max_phases=6
        )
        assert outcome.agreement_holds
        assert not outcome.decisions  # liveness gone forever

    def test_same_configuration_with_sound_td_decides(self):
        model = FaultModel(4, 1, 0)
        # FLAG=* needs TD > (n+b)/2 = 2.5 and ≤ n − b = 3 → TD = 3, but
        # class 1 liveness also needs TD > (n+3b+f)/2 = 3.5 — impossible:
        # exactly Table 1's statement that class 1 needs n > 5b.  Class 3
        # (PBFT) handles n = 4, b = 1 instead:
        from repro.core.classification import AlgorithmClass, build_class_parameters

        params = build_class_parameters(AlgorithmClass.CLASS_3, model)
        outcome = run_consensus(
            params, values := {pid: "v" for pid in range(3)},
            byzantine={3: "silent"},
        )
        assert outcome.all_correct_decided


class TestClass2BelowFourB:
    """MQB territory: at n = 4b the class-2 parameters cannot exist."""

    def test_no_valid_threshold_exists(self):
        model = FaultModel(4, 1, 0)
        # class 2 needs TD > 3b + f = 3 and TD ≤ n − b − f = 3: empty range.
        from repro.core.classification import AlgorithmClass

        assert not AlgorithmClass.CLASS_2.admits(model)

    def test_forced_low_threshold_loses_flv_liveness_bound(self):
        model = FaultModel(4, 1, 0)
        flv = FLVClass2(model, 3)
        assert not flv.satisfies_liveness_bound()
        # Concretely: a full correct vector can still answer null.
        from repro.utils.sentinels import NULL_VALUE
        from tests.conftest import sel_msg

        messages = [
            sel_msg("a", ts=1),
            sel_msg("b", ts=2),
            sel_msg("c", ts=3),
        ]  # n − b − f = 3 messages, nothing survives, |μ| = 3 ≤ n−TD+2b = 3
        assert flv.evaluate(messages) is NULL_VALUE

    def test_forced_run_may_never_decide(self):
        model = FaultModel(4, 1, 0)
        td = 3
        params = force_parameters(
            model, td, Flag.CURRENT_PHASE, FLVClass2(model, td)
        )
        values = {pid: f"v{pid}" for pid in range(3)}
        outcome = run_consensus(
            params, values, byzantine={3: "high-ts-liar"}, max_phases=8
        )
        # Safety still holds (agreement is proven for TD > b)…
        assert outcome.agreement_holds
