"""The repro.cli entry point."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pbft" in out and "equivocator" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "n>5b+3f" in out and "MQB" in out


def test_run_pbft(capsys):
    code = main(
        ["run", "--algorithm", "pbft", "--n", "4", "--byzantine", "equivocator"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "agreement   : True" in out
    assert "phases      : 1" in out


def test_run_benign(capsys):
    assert main(["run", "--algorithm", "paxos", "--n", "3"]) == 0
    assert "termination : True" in capsys.readouterr().out


def test_run_unknown_algorithm(capsys):
    assert main(["run", "--algorithm", "nope", "--n", "4"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_run_invalid_bound(capsys):
    assert main(["run", "--algorithm", "pbft", "--n", "3", "--b", "1"]) == 2
    assert "cannot build" in capsys.readouterr().err


def test_sweep(capsys):
    assert main(["sweep", "--class", "3", "--b", "1", "--n-max", "5"]) == 0
    out = capsys.readouterr().out
    assert "admitted" in out


def test_ben_or(capsys):
    assert main(["ben-or", "--n", "3", "--seeds", "5"]) == 0
    out = capsys.readouterr().out
    assert "phases to decide" in out


def test_smr_serve(capsys):
    code = main([
        "smr", "serve", "--rate", "80", "--duration", "1",
        "--batch", "8", "--depth", "4", "--seed", "3",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "committed" in out
    assert "p50" in out and "p99" in out
    assert "digests agree True" in out


def test_smr_serve_json_digest_stable_across_pipelining(capsys):
    import json

    common = ["--rate", "80", "--duration", "1", "--seed", "3", "--json"]
    assert main(["smr", "serve", "--batch", "1", "--depth", "1"] + common) == 0
    baseline = json.loads(capsys.readouterr().out)
    assert main(["smr", "serve", "--batch", "8", "--depth", "4"] + common) == 0
    piped = json.loads(capsys.readouterr().out)
    assert piped["log_digest"] == baseline["log_digest"]
    assert piped["digest"] == baseline["digest"]
    assert piped["latency_p99"] < baseline["latency_p99"]


def test_smr_serve_inapplicable(capsys):
    code = main([
        "smr", "serve", "--algorithm", "pbft", "--n", "7", "--b", "2",
        "--f", "2", "--rate", "10", "--duration", "0.2",
    ])
    assert code == 2
    assert "inapplicable" in capsys.readouterr().err


def test_smr_sweep(capsys, tmp_path):
    out_path = tmp_path / "serve.jsonl"
    code = main([
        "smr", "sweep", "--duration", "0.5", "--rates", "20,40",
        "--scenarios", "fault-free,worst_case", "--seed", "3",
        "--out", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "serve|worst_case|rate40" in out
    assert out_path.read_text().count("\n") == 4


def test_campaign_plan_classifies_cells_without_executing(capsys):
    assert main(["campaign", "plan", "gauntlet"]) == 0
    out = capsys.readouterr().out
    # Every tier the gauntlet exercises appears, with its reason text.
    assert "campaign 'gauntlet':" in out
    assert "columnar-state" in out
    assert "replicate" in out
    assert "seed-dependent timed delivery" in out
    assert "array program" in out
    # The classification is a plan, not an execution: tier counts cover
    # the whole grid.
    assert "tiers:" in out


def test_campaign_plan_unknown_spec(capsys):
    assert main(["campaign", "plan", "no-such-campaign"]) == 2
    assert "no such campaign" in capsys.readouterr().err
