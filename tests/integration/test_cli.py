"""The repro.cli entry point."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pbft" in out and "equivocator" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "n>5b+3f" in out and "MQB" in out


def test_run_pbft(capsys):
    code = main(
        ["run", "--algorithm", "pbft", "--n", "4", "--byzantine", "equivocator"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "agreement   : True" in out
    assert "phases      : 1" in out


def test_run_benign(capsys):
    assert main(["run", "--algorithm", "paxos", "--n", "3"]) == 0
    assert "termination : True" in capsys.readouterr().out


def test_run_unknown_algorithm(capsys):
    assert main(["run", "--algorithm", "nope", "--n", "4"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_run_invalid_bound(capsys):
    assert main(["run", "--algorithm", "pbft", "--n", "3", "--b", "1"]) == 2
    assert "cannot build" in capsys.readouterr().err


def test_sweep(capsys):
    assert main(["sweep", "--class", "3", "--b", "1", "--n-max", "5"]) == 0
    out = capsys.readouterr().out
    assert "admitted" in out


def test_ben_or(capsys):
    assert main(["ben-or", "--n", "3", "--seeds", "5"]) == 0
    out = capsys.readouterr().out
    assert "phases to decide" in out
