"""Adversary scenario presets."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.types import FaultModel
from repro.faults.adversary import (
    SCENARIO_PRESETS,
    build_scenario,
    crash_storm,
    partition_heal,
    silent_minority,
    worst_case,
)


@pytest.fixture
def pbft_params(pbft_model):
    return build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)


class TestPresets:
    def test_worst_case_places_max_b(self):
        model = FaultModel(7, 2, 0)
        scenario = worst_case(model)
        assert len(scenario.byzantine) == 2

    def test_worst_case_run(self, pbft_model, pbft_params):
        scenario = worst_case(pbft_model)
        outcome = scenario.run(
            pbft_params, scenario.honest_values(pbft_model)
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1

    def test_partition_heal_delays_decision(self, pbft_model, pbft_params):
        scenario = partition_heal(pbft_model, heal_round=7)
        outcome = scenario.run(
            pbft_params, scenario.honest_values(pbft_model)
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.rounds_to_last_decision >= 7

    def test_silent_minority(self, mqb_model):
        params = build_class_parameters(AlgorithmClass.CLASS_2, mqb_model)
        scenario = silent_minority(mqb_model)
        outcome = scenario.run(params, scenario.honest_values(mqb_model))
        assert outcome.all_correct_decided

    def test_crash_storm(self):
        model = FaultModel(5, 0, 2)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        scenario = crash_storm(model)
        outcome = scenario.run(params, scenario.honest_values(model))
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert len(outcome.decisions) == 3  # the two crashed never decide

    def test_async_then_sync(self, pbft_model, pbft_params):
        scenario = build_scenario("async_then_sync", pbft_model, gst_round=9)
        outcome = scenario.run(
            pbft_params, scenario.honest_values(pbft_model)
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided


class TestRegistry:
    def test_all_presets_buildable(self, pbft_model):
        for name in SCENARIO_PRESETS:
            scenario = build_scenario(name, pbft_model)
            assert scenario.name == name

    def test_unknown_preset(self, pbft_model):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nonsense", pbft_model)

    def test_honest_values_excludes_byzantine(self, pbft_model):
        scenario = worst_case(pbft_model)
        values = scenario.honest_values(pbft_model)
        assert set(values) == {0, 1, 2}
        uniform = scenario.honest_values(pbft_model, split=False)
        assert set(uniform.values()) == {"v"}
