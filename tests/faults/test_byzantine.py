"""Byzantine strategy library: each attack is exercised and contained."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import run_consensus
from repro.core.types import (
    FaultModel,
    RoundInfo,
    RoundKind,
    SelectionMessage,
    coerce_selection_message,
)
from repro.faults.byzantine import (
    AdaptiveLiar,
    Equivocator,
    FakeHistoryLiar,
    HighTimestampLiar,
    RandomNoise,
    SilentByzantine,
    VoteFlipper,
)


@pytest.fixture
def params(pbft_model):
    return build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)


SEL = RoundInfo(1, 1, RoundKind.SELECTION)
VAL = RoundInfo(2, 1, RoundKind.VALIDATION)
DEC = RoundInfo(3, 1, RoundKind.DECISION)


class TestStrategyMechanics:
    def test_silent_sends_nothing(self, params):
        strategy = SilentByzantine(3, params)
        for info in (SEL, VAL, DEC):
            assert strategy.send(info) == {}

    def test_noise_is_unparseable_or_invalid(self, params):
        strategy = RandomNoise(3, params)
        out = strategy.send(SEL)
        assert len(out) == 4
        # Every payload must be rejected by the defensive parser.
        for payload in out.values():
            assert coerce_selection_message(payload) is None

    def test_equivocator_splits_receivers(self, params):
        strategy = Equivocator(3, params, values=("left", "right"))
        out = strategy.send(SEL)
        assert out[0].vote == "left"
        assert out[1].vote == "right"

    def test_equivocator_needs_two_values(self, params):
        with pytest.raises(ValueError):
            Equivocator(3, params, values=("only",))

    def test_vote_flipper_consistent_evil(self, params):
        strategy = VoteFlipper(3, params, evil_value="evil")
        sel = strategy.send(SEL)
        dec = strategy.send(DEC)
        assert all(m.vote == "evil" for m in sel.values())
        assert all(m.vote == "evil" for m in dec.values())
        assert all(m.ts == DEC.phase for m in dec.values())

    def test_high_ts_liar_claims_future(self, params):
        strategy = HighTimestampLiar(3, params, timestamp=999)
        out = strategy.send(SEL)
        assert all(m.ts == 999 for m in out.values())

    def test_fake_history_forges_certificates(self, params):
        strategy = FakeHistoryLiar(3, params, evil_value="evil")
        out = strategy.send(RoundInfo(7, 3, RoundKind.SELECTION))
        message = out[0]
        assert ("evil", 3) in message.history

    def test_adaptive_liar_observes_then_splits(self, params):
        strategy = AdaptiveLiar(3, params)
        strategy.receive(
            SEL,
            {
                0: SelectionMessage("pop", 0, frozenset(), frozenset()),
                1: SelectionMessage("pop", 0, frozenset(), frozenset()),
                2: SelectionMessage("rare", 0, frozenset(), frozenset()),
            },
        )
        out = strategy.send(DEC)
        votes = {m.vote for m in out.values()}
        assert votes == {"pop", "rare"}


class TestAttackContainment:
    """Each strategy, at full strength b, cannot break safety or liveness."""

    @pytest.mark.parametrize(
        "strategy_cls",
        [
            SilentByzantine,
            RandomNoise,
            Equivocator,
            VoteFlipper,
            HighTimestampLiar,
            FakeHistoryLiar,
            AdaptiveLiar,
        ],
    )
    @pytest.mark.parametrize(
        "cls,model_args",
        [
            (AlgorithmClass.CLASS_1, (6, 1, 0)),
            (AlgorithmClass.CLASS_2, (5, 1, 0)),
            (AlgorithmClass.CLASS_3, (4, 1, 0)),
        ],
    )
    def test_contained(self, strategy_cls, cls, model_args):
        model = FaultModel(*model_args)
        params = build_class_parameters(cls, model)
        values = {pid: f"v{pid % 2}" for pid in range(model.n - 1)}
        strategy = strategy_cls(model.n - 1, params)
        outcome = run_consensus(
            params, values, byzantine={model.n - 1: strategy}
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided

    def test_evil_value_never_decided_under_unanimity(self, params):
        """Unanimity: with all honest proposals equal, the Byzantine value
        can never be decided.  (With split honest proposals the paper
        permits adopting a Byzantine proposal — validity only binds the
        all-honest case.)"""
        values = {0: "good", 1: "good", 2: "good"}
        for strategy_name in ("vote-flipper", "high-ts-liar", "fake-history-liar"):
            outcome = run_consensus(
                params, values, byzantine={3: strategy_name}
            )
            assert outcome.decided_values == {"good"}, strategy_name

    def test_byzantine_value_may_be_adopted_with_split_proposals(self, params):
        """Documents the model's permissiveness: with split honest proposals
        a Byzantine value sorting first in the deterministic choice can
        legitimately win (agreement still holds)."""
        values = {0: "x", 1: "y", 2: "x"}
        outcome = run_consensus(
            params, values, byzantine={3: "vote-flipper"}
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
