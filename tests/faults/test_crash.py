"""Crash schedules."""

import pytest

from repro.core.types import FaultModel
from repro.faults.crash import CrashEvent, CrashSchedule


@pytest.fixture
def model():
    return FaultModel(5, 0, 2)


class TestCrashEvent:
    def test_surviving_all(self):
        event = CrashEvent(0, 3)
        assert event.surviving([1, 2, 3]) == frozenset({1, 2, 3})

    def test_surviving_subset(self):
        event = CrashEvent(0, 3, frozenset({1}))
        assert event.surviving([1, 2, 3]) == frozenset({1})

    def test_surviving_none(self):
        event = CrashEvent(0, 3, frozenset())
        assert event.surviving([1, 2]) == frozenset()


class TestCrashSchedule:
    def test_none(self, model):
        schedule = CrashSchedule.none(model)
        assert schedule.doomed == frozenset()
        assert not schedule.is_down(0, 100)

    def test_crash_first_f(self, model):
        schedule = CrashSchedule.crash_first_f(model, round_number=2)
        assert schedule.doomed == frozenset({0, 1})

    def test_cap_at_f(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 1), CrashEvent(1, 1)])
        with pytest.raises(ValueError, match="more than f"):
            schedule.add(CrashEvent(2, 1))

    def test_duplicate_rejected(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 1)])
        with pytest.raises(ValueError, match="already"):
            schedule.add(CrashEvent(0, 2))

    def test_bad_ids_and_rounds(self, model):
        with pytest.raises(ValueError):
            CrashSchedule(model, [CrashEvent(9, 1)])
        with pytest.raises(ValueError):
            CrashSchedule(model, [CrashEvent(0, 0)])

    def test_is_down_semantics(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 3)])
        assert not schedule.is_down(0, 3)  # crash round: still sends
        assert schedule.is_down(0, 4)

    def test_filter_outbound_before(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 3)])
        out = {1: "a", 2: "b"}
        assert schedule.filter_outbound(0, 2, out) == out

    def test_filter_outbound_at_crash(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 3, frozenset({1}))])
        out = {1: "a", 2: "b"}
        assert schedule.filter_outbound(0, 3, out) == {1: "a"}

    def test_filter_outbound_after(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 3)])
        assert schedule.filter_outbound(0, 4, {1: "a"}) == {}

    def test_unscheduled_process_untouched(self, model):
        schedule = CrashSchedule(model, [CrashEvent(0, 3)])
        assert schedule.filter_outbound(1, 9, {0: "x"}) == {0: "x"}
