"""CT driven by ♦S: the suspicion-aware coordinator oracle."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import run_consensus
from repro.core.selector import LeaderSelector
from repro.core.types import FaultModel
from repro.detectors.failure_detector import DiamondS, suspicion_driven_oracle
from repro.faults.crash import CrashEvent, CrashSchedule


def build_ct_with_detector(model, detector):
    oracle = suspicion_driven_oracle(model, detector)
    return build_class_parameters(
        AlgorithmClass.CLASS_2, model, selector=LeaderSelector(model, oracle)
    )


class TestOracleMechanics:
    def test_skips_suspected_coordinator(self):
        model = FaultModel(3, 0, 1)
        detector = DiamondS(model, faulty={0}, accurate_from_round=1)
        oracle = suspicion_driven_oracle(model, detector)
        # Phase 1 would rotate to process 0, but 0 is suspected → 1.
        assert oracle(1, 1) == 1
        assert oracle(2, 1) == 1

    def test_trusts_unsuspected_rotation(self):
        model = FaultModel(3, 0, 1)
        detector = DiamondS(model, faulty=set(), accurate_from_round=1)
        oracle = suspicion_driven_oracle(model, detector)
        assert [oracle(0, phase) for phase in (1, 2, 3)] == [0, 1, 2]

    def test_all_suspected_falls_back(self):
        model = FaultModel(3, 0, 1)
        detector = DiamondS(
            model, faulty={0}, accurate_from_round=100, false_suspicion_prob=1.0
        )
        oracle = suspicion_driven_oracle(model, detector)
        # Everyone (except the observer) suspected: rotation fallback.
        leader = oracle(1, 1)
        assert 0 <= leader < 3


class TestCtWithDetectorEndToEnd:
    def test_dead_coordinator_is_skipped_immediately(self):
        """With an accurate ♦S, the phase-1 rotation target (crashed process
        0) is never elected: decision lands in phase 1 via coordinator 1."""
        model = FaultModel(3, 0, 1)
        detector = DiamondS(model, faulty={0}, accurate_from_round=1)
        params = build_ct_with_detector(model, detector)
        schedule = CrashSchedule(model, [CrashEvent(0, 1, frozenset())])
        outcome = run_consensus(
            params,
            {pid: f"v{pid}" for pid in range(3)},
            crash_schedule=schedule,
            max_phases=5,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 1  # no wasted phase!

    def test_plain_rotation_wastes_the_first_phase(self):
        """Contrast: without the detector, CT burns phase 1 on the corpse."""
        from repro.algorithms import build_chandra_toueg

        spec = build_chandra_toueg(3)
        schedule = CrashSchedule(
            spec.parameters.model, [CrashEvent(0, 1, frozenset())]
        )
        outcome = spec.run(
            {pid: f"v{pid}" for pid in range(3)},
            crash_schedule=schedule,
            max_phases=5,
        )
        assert outcome.all_correct_decided
        assert outcome.phases_to_last_decision == 2

    def test_noisy_detector_still_safe_and_eventually_live(self):
        model = FaultModel(5, 0, 2)
        detector = DiamondS(
            model,
            faulty={0},
            accurate_from_round=12,
            false_suspicion_prob=0.6,
            seed=5,
        )
        params = build_ct_with_detector(model, detector)
        schedule = CrashSchedule(model, [CrashEvent(0, 1, frozenset())])
        outcome = run_consensus(
            params,
            {pid: f"v{pid}" for pid in range(5)},
            crash_schedule=schedule,
            max_phases=12,
        )
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
