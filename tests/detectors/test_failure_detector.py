"""♦S simulation: completeness and eventual accuracy."""

import pytest

from repro.core.types import FaultModel
from repro.detectors.failure_detector import DiamondS


@pytest.fixture
def model():
    return FaultModel(5, 0, 2)


def test_completeness_everywhere(model):
    detector = DiamondS(model, faulty={0, 1}, accurate_from_round=1)
    for observer in range(2, 5):
        for round_number in (1, 5, 50):
            sample = detector.sample(observer, round_number)
            assert {0, 1} <= sample.suspects


def test_accuracy_after_stabilization(model):
    detector = DiamondS(
        model, faulty={0}, accurate_from_round=10, false_suspicion_prob=0.9, seed=2
    )
    for observer in range(1, 5):
        sample = detector.sample(observer, 10)
        assert sample.suspects == frozenset({0})


def test_false_suspicions_before_stabilization(model):
    detector = DiamondS(
        model, faulty={0}, accurate_from_round=50, false_suspicion_prob=0.9, seed=2
    )
    # With probability 0.9 per pair, some correct process is falsely
    # suspected somewhere in the noisy prefix.
    suspected = set()
    for observer in range(1, 5):
        for round_number in range(1, 10):
            suspected |= detector.sample(observer, round_number).suspects
    assert suspected - {0}


def test_noise_is_deterministic(model):
    a = DiamondS(model, faulty={0}, accurate_from_round=50, seed=3)
    b = DiamondS(model, faulty={0}, accurate_from_round=50, seed=3)
    assert a.sample(1, 4).suspects == b.sample(1, 4).suspects


def test_never_self_suspects(model):
    detector = DiamondS(
        model, faulty=set(), accurate_from_round=100, false_suspicion_prob=1.0
    )
    for observer in range(5):
        assert observer not in detector.sample(observer, 1).suspects


def test_eventually_trusted(model):
    detector = DiamondS(model, faulty={0, 1})
    assert detector.eventually_trusted() == frozenset({2, 3, 4})


def test_probability_validation(model):
    with pytest.raises(ValueError):
        DiamondS(model, faulty=set(), false_suspicion_prob=1.5)


def test_sample_api(model):
    detector = DiamondS(model, faulty={0})
    sample = detector.sample(1, 1)
    assert sample.suspects_process(0)
    assert not sample.suspects_process(1)
