"""Leader oracles."""

import pytest

from repro.core.types import FaultModel
from repro.detectors.leader import (
    OmegaOracle,
    StabilizingLeaderOracle,
    rotating_oracle,
)


def test_omega_is_constant():
    oracle = OmegaOracle(2)
    assert oracle(0, 1) == 2
    assert oracle(4, 99) == 2
    assert oracle.leader == 2


class TestStabilizingOracle:
    def test_stable_after_threshold(self):
        model = FaultModel(5, 0, 2)
        oracle = StabilizingLeaderOracle(model, 3, stable_from_phase=4, seed=0)
        for pid in model.processes:
            for phase in (4, 5, 20):
                assert oracle(pid, phase) == 3

    def test_chaotic_before_threshold(self):
        model = FaultModel(5, 0, 2)
        oracle = StabilizingLeaderOracle(model, 3, stable_from_phase=10, seed=0)
        sightings = {
            oracle(pid, phase) for pid in model.processes for phase in range(1, 10)
        }
        assert len(sightings) > 1  # disagreement happens pre-stabilization

    def test_chaos_is_deterministic(self):
        model = FaultModel(5, 0, 2)
        a = StabilizingLeaderOracle(model, 3, stable_from_phase=10, seed=7)
        b = StabilizingLeaderOracle(model, 3, stable_from_phase=10, seed=7)
        assert [a(1, p) for p in range(1, 10)] == [b(1, p) for p in range(1, 10)]

    def test_chaos_pool_restriction(self):
        model = FaultModel(5, 0, 2)
        oracle = StabilizingLeaderOracle(
            model, 3, stable_from_phase=10, chaos_pool=[0, 1], seed=0
        )
        assert {oracle(pid, phase) for pid in range(5) for phase in range(1, 10)} <= {
            0,
            1,
        }

    def test_validation(self):
        model = FaultModel(5, 0, 2)
        with pytest.raises(ValueError):
            StabilizingLeaderOracle(model, 9, stable_from_phase=2)
        with pytest.raises(ValueError):
            StabilizingLeaderOracle(model, 1, stable_from_phase=0)


def test_rotating_oracle():
    model = FaultModel(3, 0, 1)
    oracle = rotating_oracle(model)
    assert [oracle(0, phase) for phase in (1, 2, 3, 4)] == [0, 1, 2, 0]
