"""``observe="profile"``: phase spans without trace objects, parity intact."""

import pytest

from repro.algorithms import build_one_third_rule, build_pbft
from repro.engine.assembly import build_instance
from repro.engine.kernel import (
    OBSERVE_FULL,
    OBSERVE_METRICS,
    OBSERVE_PROFILE,
    run_instance,
)
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.eventsim.network import PartialSynchronyNetwork, UniformLatency
from repro.observability import Telemetry

KERNEL_SPANS = {"kernel.send", "scheduler.deliver", "kernel.apply",
                "kernel.probe", "kernel.observe"}


def run_cell(spec, *, engine="lockstep", observe=OBSERVE_METRICS,
             telemetry=None, byzantine=None):
    model = spec.parameters.model
    byzantine = byzantine or {}
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    instance = build_instance(
        spec.parameters, values, config=spec.config, byzantine=byzantine
    )
    if engine == "lockstep":
        scheduler = LockstepScheduler()
    else:
        scheduler = TimedScheduler(
            PartialSynchronyNetwork(
                UniformLatency(0.5, 2.0), gst=0.0, delta=2.0, seed=7
            ),
            round_duration=2.5,
        )
    return run_instance(
        instance, scheduler, max_phases=12, observe=observe,
        telemetry=telemetry,
    )


class TestProfileMode:
    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    def test_profile_attaches_telemetry_without_trace(self, engine):
        outcome = run_cell(
            build_pbft(4), engine=engine, observe=OBSERVE_PROFILE,
            byzantine={3: "equivocator"},
        )
        assert outcome.trace is None
        assert outcome.telemetry is not None
        names = set(outcome.telemetry.span_names)
        assert KERNEL_SPANS <= names
        rounds = outcome.rounds_executed
        for span in KERNEL_SPANS:
            stats = outcome.telemetry.span_stats(span)
            assert stats["calls"] == rounds
            assert stats["total_s"] >= stats["self_s"] >= 0.0

    def test_timed_profile_times_network_sampling(self):
        outcome = run_cell(
            build_one_third_rule(4), engine="timed", observe=OBSERVE_PROFILE
        )
        tel = outcome.telemetry
        assert "network.sample" in tel.span_names
        # Sampling happens inside delivery, so its time nests under the
        # scheduler span: deliver's self time excludes it.
        deliver = tel.span_stats("scheduler.deliver")
        sample = tel.span_stats("network.sample")
        assert deliver["self_s"] == pytest.approx(
            deliver["total_s"] - sample["total_s"]
        )

    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    def test_profile_matches_metrics_results(self, engine):
        spec = build_pbft(4)
        metrics = run_cell(spec, engine=engine, observe=OBSERVE_METRICS,
                           byzantine={3: "equivocator"})
        profiled = run_cell(spec, engine=engine, observe=OBSERVE_PROFILE,
                            byzantine={3: "equivocator"})
        assert {p: d.value for p, d in profiled.decisions.items()} == {
            p: d.value for p, d in metrics.decisions.items()
        }
        assert profiled.rounds_executed == metrics.rounds_executed
        assert profiled.messages_sent == metrics.messages_sent
        assert profiled.messages_delivered == metrics.messages_delivered
        assert profiled.invariant_report() == metrics.invariant_report()

    def test_metrics_and_full_attach_no_telemetry_by_default(self):
        spec = build_one_third_rule(4)
        assert run_cell(spec, observe=OBSERVE_METRICS).telemetry is None
        assert run_cell(spec, observe=OBSERVE_FULL).telemetry is None

    def test_explicit_telemetry_composes_with_full_observation(self):
        tel = Telemetry()
        outcome = run_cell(
            build_pbft(4), observe=OBSERVE_FULL, telemetry=tel,
            byzantine={3: "equivocator"},
        )
        assert outcome.telemetry is tel
        assert outcome.trace is not None  # full mode keeps its trace
        assert KERNEL_SPANS <= set(tel.span_names)

    def test_shared_telemetry_accumulates_across_runs(self):
        tel = Telemetry()
        spec = build_one_third_rule(4)
        first = run_cell(spec, observe=OBSERVE_PROFILE, telemetry=tel)
        second = run_cell(spec, observe=OBSERVE_PROFILE, telemetry=tel)
        assert first.telemetry is second.telemetry is tel
        assert tel.span_stats("kernel.send")["calls"] == (
            first.rounds_executed + second.rounds_executed
        )

    def test_scheduler_reuse_rebinds_telemetry(self):
        # A scheduler carried from an instrumented run into a plain one
        # must not keep reporting into the stale registry.
        spec = build_one_third_rule(4)
        model = spec.parameters.model
        values = {pid: f"v{pid % 2}" for pid in model.processes}
        scheduler = LockstepScheduler()
        tel = Telemetry()
        instance = build_instance(spec.parameters, values, config=spec.config)
        run_instance(instance, scheduler, max_phases=12,
                     observe=OBSERVE_PROFILE, telemetry=tel)
        calls = tel.span_stats("scheduler.deliver")["calls"]
        instance = build_instance(spec.parameters, values, config=spec.config)
        run_instance(instance, scheduler, max_phases=12,
                     observe=OBSERVE_METRICS)
        assert tel.span_stats("scheduler.deliver")["calls"] == calls
