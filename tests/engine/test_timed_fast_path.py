"""Byte-identity of the heap-free timed delivery against the legacy heap.

The fast path replaces the EventQueue push/pop cycle with a direct deadline
comparison per message.  These tests prove the replacement changes nothing
observable: delivery matrices, drop counts, round end times and — crucially
— the network RNG stream are identical, message for message and draw for
draw, under every regime (pre/post GST, fixed/uniform latency, Byzantine
canonicalization, scenario delivery filters).  The campaign-level suite in
``tests/campaigns/test_campaign_identity.py`` extends the same claim to
whole result files.
"""

from __future__ import annotations

import random

import pytest

from repro.core.types import FaultModel, RoundInfo, RoundKind
from repro.engine.scheduler import TimedScheduler
from repro.eventsim.network import (
    FixedLatency,
    PartialSynchronyNetwork,
    UniformLatency,
)
from repro.rounds.base import RunContext


def make_network(latency, *, gst=0.0, seed=11):
    return PartialSynchronyNetwork(
        latency, gst=gst, delta=2.0, pre_gst_delay_prob=0.5, seed=seed
    )


def broadcast_outbound(model, payload_fn):
    """Everyone sends to everyone; payloads vary per (sender, dest)."""
    return {
        sender: {dest: payload_fn(sender, dest) for dest in model.processes}
        for sender in model.processes
    }


def run_both(make_scheduler, rounds, model, byzantine=frozenset()):
    """Drive fast and heap schedulers through identical rounds, comparing."""
    fast = make_scheduler(use_heap=False)
    slow = make_scheduler(use_heap=True)
    fast.reset()
    slow.reset()
    ctx_fast = RunContext(model, byzantine=byzantine)
    ctx_slow = RunContext(model, byzantine=byzantine)
    deliveries = []
    for info, outbound in rounds:
        a = fast.deliver_round(info, outbound, ctx_fast)
        b = slow.deliver_round(info, outbound, ctx_slow)
        assert a.matrix == b.matrix, f"matrix diverged in round {info.number}"
        assert a.dropped == b.dropped, f"drops diverged in round {info.number}"
        assert a.end_time == b.end_time
        deliveries.append(a)
    return deliveries


@pytest.mark.parametrize("gst", [0.0, 7.0, 100.0])
def test_uniform_latency_matches_heap_across_gst(gst):
    """Pre-GST chaos, the GST boundary and post-GST clamping all agree."""
    model = FaultModel(5, 0, 0)
    seeds = {}

    def make(use_heap):
        network = make_network(UniformLatency(0.5, 2.0), gst=gst, seed=23)
        seeds[use_heap] = network
        return TimedScheduler(network, round_duration=2.5, use_heap=use_heap)

    rounds = [
        (
            RoundInfo(r, (r - 1) // 3 + 1, RoundKind.DECISION),
            broadcast_outbound(model, lambda s, d, r=r: ("msg", r, s, d)),
        )
        for r in range(1, 9)
    ]
    run_both(make, rounds, model)
    # The RNG streams advanced identically: the next draw agrees too.
    assert seeds[False].transit_time(99.0, 0, 1) == seeds[True].transit_time(
        99.0, 0, 1
    )


def test_selection_round_canonicalizes_byzantine_payloads():
    """Equivocating selection payloads pin to the first-addressed one."""
    model = FaultModel(4, 1, 0)
    byz = frozenset({3})

    def make(use_heap):
        return TimedScheduler(
            make_network(UniformLatency(0.5, 1.5), gst=0.0, seed=7),
            round_duration=2.5,
            use_heap=use_heap,
        )

    info = RoundInfo(1, 1, RoundKind.SELECTION)
    outbound = broadcast_outbound(model, lambda s, d: (s, d))
    (delivery,) = run_both(make, [(info, outbound)], model, byzantine=byz)
    # Every receiver saw the same canonical payload from the equivocator.
    seen = {inbox[3] for inbox in delivery.matrix.values() if 3 in inbox}
    assert len(seen) == 1


def test_delivery_filter_matches_heap_and_skips_sampling():
    """Filter-rejected edges drop identically and never draw a latency."""
    model = FaultModel(4, 0, 0)

    def flt(info, sender, dest, ctx):
        return (sender + dest) % 2 == 0

    def make(use_heap):
        return TimedScheduler(
            make_network(UniformLatency(0.5, 2.0), gst=0.0, seed=3),
            round_duration=2.5,
            delivery_filter=flt,
            use_heap=use_heap,
        )

    rounds = [
        (
            RoundInfo(r, r, RoundKind.DECISION),
            broadcast_outbound(model, lambda s, d: (s, d)),
        )
        for r in range(1, 5)
    ]
    deliveries = run_both(make, rounds, model)
    for delivery in deliveries:
        assert delivery.dropped >= 8  # half the 16 edges fail the filter


def test_post_gst_fixed_latency_draws_nothing():
    """The FixedLatency short-circuit leaves the RNG stream untouched."""
    model = FaultModel(4, 0, 0)
    network = make_network(FixedLatency(1.0), gst=0.0, seed=42)
    scheduler = TimedScheduler(network, round_duration=2.5, use_heap=False)
    scheduler.reset()
    ctx = RunContext(model)
    info = RoundInfo(1, 1, RoundKind.DECISION)
    delivery = scheduler.deliver_round(
        info, broadcast_outbound(model, lambda s, d: "x"), ctx
    )
    assert delivery.dropped == 0
    assert all(len(inbox) == model.n for inbox in delivery.matrix.values())
    # Zero draws: the stream equals a fresh one with the same seed.
    assert network.transit_time(99.0, 0, 1) == make_network(
        FixedLatency(1.0), gst=0.0, seed=42
    ).transit_time(99.0, 0, 1)


def test_pre_gst_fixed_latency_still_draws_the_chaos_coin():
    """Before GST even fixed latency flips the delay coin per message."""
    model = FaultModel(3, 0, 0)

    def make(use_heap):
        return TimedScheduler(
            make_network(FixedLatency(1.0), gst=50.0, seed=9),
            round_duration=2.5,
            use_heap=use_heap,
        )

    rounds = [
        (
            RoundInfo(r, r, RoundKind.DECISION),
            broadcast_outbound(model, lambda s, d: "y"),
        )
        for r in range(1, 4)
    ]
    deliveries = run_both(make, rounds, model)
    # With p=0.5 and chaos x50 across 27 messages, some must miss.
    assert sum(d.dropped for d in deliveries) > 0


def test_slow_scheduler_env_switch(monkeypatch):
    """REPRO_SLOW_SCHEDULER=1 selects the heap path at construction."""
    network = make_network(UniformLatency(), seed=1)
    monkeypatch.setenv("REPRO_SLOW_SCHEDULER", "1")
    assert TimedScheduler(network)._queue is not None
    monkeypatch.setenv("REPRO_SLOW_SCHEDULER", "0")
    assert TimedScheduler(network)._queue is None
    monkeypatch.delenv("REPRO_SLOW_SCHEDULER")
    assert TimedScheduler(network)._queue is None
    # The explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_SLOW_SCHEDULER", "1")
    assert TimedScheduler(network, use_heap=False)._queue is None


def test_sample_round_matches_per_message_stream():
    """sample_round consumes the RNG exactly as transit_time per edge."""
    edges = [(s, d) for s in range(6) for d in range(6)]
    for gst, send_time in [(0.0, 0.0), (30.0, 2.5), (30.0, 30.0)]:
        batched = make_network(UniformLatency(0.5, 2.0), gst=gst, seed=5)
        serial = make_network(UniformLatency(0.5, 2.0), gst=gst, seed=5)
        expected = [serial.transit_time(send_time, s, d) for s, d in edges]
        assert batched.sample_round(send_time, edges) == expected


@pytest.mark.parametrize(
    "latency", [UniformLatency(0.5, 2.0), FixedLatency(1.0)]
)
def test_block_rng_network_matches_per_message_stream(latency):
    """The batch backend's per-run RNG contract, at the network layer.

    A network whose stream is a :class:`~repro.utils.accel.BlockRng` (the
    columnar tier's block-capable stream) draws the same floats, draw for
    draw, as the scalar network — including scalar ``transit_time`` calls
    interleaved between bulk rounds, which is exactly the heap scheduler's
    access pattern.
    """
    from repro.utils.accel import BlockRng

    edges = [(s, d) for s in range(6) for d in range(6)]
    for gst, send_time in [(0.0, 0.0), (30.0, 2.5), (30.0, 30.0)]:
        block_net = PartialSynchronyNetwork(
            latency, gst=gst, delta=2.0, pre_gst_delay_prob=0.5,
            rng=BlockRng(5),
        )
        serial = PartialSynchronyNetwork(
            latency, gst=gst, delta=2.0, pre_gst_delay_prob=0.5, seed=5
        )
        expected = [serial.transit_time(send_time, s, d) for s, d in edges]
        assert block_net.sample_round(send_time, edges) == expected
        # The streams stay aligned across the bulk draw: the next scalar
        # draw on each network agrees too.
        assert block_net.transit_time(send_time, 1, 2) == serial.transit_time(
            send_time, 1, 2
        )


def test_sample_many_accepts_payload_triples():
    """Extra tuple items are ignored, so schedulers pass records directly."""
    rng_a, rng_b = random.Random(4), random.Random(4)
    model = UniformLatency(0.5, 2.0)
    triples = [(0, 1, "payload"), (1, 0, "other")]
    assert model.sample_many(rng_a, triples) == [
        model.sample(rng_b, 0, 1),
        model.sample(rng_b, 1, 0),
    ]


# --------------------------------------------------- BlockRng edge cases


def test_block_rng_zero_length_block_consumes_nothing():
    """block(0) is a no-op on the stream, on both backends."""
    from repro.utils.accel import BlockRng

    reference = random.Random(17)
    rng = BlockRng(17)
    assert list(rng.block(0)) == []
    assert rng.random() == reference.random()
    # Move into a buffered state, then drain zero again.
    assert [float(v) for v in rng.block(3)] == [
        reference.random() for _ in range(3)
    ]
    assert list(rng.block(0)) == []
    expected = [reference.random() for _ in range(4)]
    got = [float(v) for v in rng.block(3)] + [rng.random()]
    assert got == expected


def test_block_rng_interleaved_draws_span_buffer_boundary():
    """Alternating random()/block(k) never reorders or drops a draw."""
    from repro.utils.accel import BlockRng

    reference = random.Random(23)
    rng = BlockRng(23)
    got = []
    # Pattern sized to cross the 512-draw internal buffer several times.
    for k in (1, 255, 2, 511, 7, 512, 1):
        got.append(rng.random())
        got.extend(float(v) for v in rng.block(k))
    expected = [reference.random() for _ in range(len(got))]
    assert got == expected


def test_block_rng_transplant_equality_immediately():
    """A BlockRng adopted mid-stream continues with the very next draw."""
    from repro.utils.accel import BlockRng

    source = random.Random(31)
    mirror = random.Random(31)
    for _ in range(101):  # odd count: mid-word positions must transplant too
        source.random()
        mirror.random()
    rng = BlockRng(source)
    # The first post-transplant draw — scalar and block — matches exactly.
    assert rng.random() == mirror.random()
    assert [float(v) for v in rng.block(5)] == [
        mirror.random() for _ in range(5)
    ]


def test_block_rng_clone_diverges_from_shared_state():
    """clone() duplicates the stream position; the twins then diverge."""
    from repro.utils.accel import BlockRng

    rng = BlockRng(47)
    rng.block(13)  # leave a partially consumed buffer behind
    twin = rng.clone()
    a = [float(v) for v in rng.block(20)]
    b = [float(v) for v in twin.block(20)]
    assert a == b  # same state at clone time -> same continuation
    # Independent states after the clone: advancing one does not move the
    # other — the twin's next draw is still draw #34 of the seed stream.
    rng.random()
    rng.random()
    reference = random.Random(47)
    for _ in range(33):
        reference.random()
    assert twin.random() == reference.random()
