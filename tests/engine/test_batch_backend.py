"""The batch backend's RNG-stream contract and row byte-identity.

Batch row *b* must consume exactly the streams of the scalar run with the
same coordinate-derived seed (see :mod:`repro.engine.batch`'s package
docstring).  This suite pins every layer of that claim:

* :class:`~repro.utils.accel.BlockRng` continues a ``random.Random``
  stream bit for bit — from a seed, mid-stream, under interleaved
  scalar/block draws, and in the pure-python fallback;
* block-capable networks draw the same floats as scalar ones, draw for
  draw, with ``sample_matrix`` keeping one independent stream per row;
* the planner proves tiers conservatively (known cells land where the
  design says they land);
* :func:`~repro.engine.batch.run_batch` reproduces the scalar oracle's
  rows byte-for-byte on representative cells of every tier, with and
  without numpy.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS
from repro.campaigns.results import row_to_json
from repro.campaigns.runner import execute_run
from repro.engine.batch import (
    MODE_COLUMNAR,
    MODE_COLUMNAR_STATE,
    MODE_REPLICATE,
    MODE_SCALAR,
    cell_key,
    plan_cell,
    plan_for_run,
    run_batch,
)
from repro.eventsim.network import NetworkSpec, UniformLatency
from repro.scenarios.registry import get_scenario
from repro.utils.accel import BlockRng, get_numpy

HAVE_NUMPY = get_numpy() is not None

GAUNTLET = BUILTIN_CAMPAIGNS["gauntlet"]


# ------------------------------------------------------------ BlockRng


def test_block_rng_matches_scalar_stream_from_seed():
    reference = random.Random(99)
    rng = BlockRng(99)
    assert [rng.random() for _ in range(700)] == [
        reference.random() for _ in range(700)
    ]


def test_block_rng_matches_scalar_stream_mid_stream():
    reference = random.Random(5)
    source = random.Random(5)
    for _ in range(13):  # advance both to a mid-stream state
        reference.random()
        source.random()
    rng = BlockRng(source)
    assert list(rng.block(40)) == [reference.random() for _ in range(40)]


def test_block_rng_interleaves_scalar_and_block_draws():
    reference = random.Random(7)
    rng = BlockRng(7)
    got = [rng.random(), rng.random()]
    got.extend(rng.block(600))  # spans the internal buffer boundary
    got.append(rng.uniform(2.0, 5.0))
    got.extend(rng.block(3))
    expected = [reference.random(), reference.random()]
    expected.extend(reference.random() for _ in range(600))
    expected.append(reference.uniform(2.0, 5.0))
    expected.extend(reference.random() for _ in range(3))
    assert [float(v) for v in got] == expected


def test_block_rng_fallback_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    rng = BlockRng(31)
    assert not rng.accelerated
    reference = random.Random(31)
    draws = [rng.random()] + list(rng.block(20)) + [rng.random()]
    assert draws == [reference.random() for _ in range(22)]


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_block_rng_accelerated_when_numpy_present():
    assert BlockRng(0).accelerated


# ----------------------------------------------------- network block paths


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
@pytest.mark.parametrize("kind,gst", [("uniform", 0.0), ("uniform", 30.0),
                                      ("fixed", 30.0)])
def test_block_network_matches_scalar_network(kind, gst):
    """Bulk draws equal the scalar loop draw for draw, floats included."""
    spec = NetworkSpec(kind=kind, gst=gst)
    scalar_net = spec.build(7)
    block_net = spec.build(7, rng=BlockRng(7))
    edges = [(s % 5, (s + 1) % 5) for s in range(23)]
    for send_time in (0.0, 5.0, 29.0, 31.0):
        assert block_net.sample_round(send_time, edges) == (
            scalar_net.sample_round(send_time, edges)
        )
        # Interleaved per-message draws continue the same stream.
        assert block_net.transit_time(send_time, 1, 2) == (
            scalar_net.transit_time(send_time, 1, 2)
        )


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_block_network_returns_plain_python_floats():
    net = NetworkSpec().build(3, rng=BlockRng(3))
    for value in net.sample_round(0.0, [(0, 1), (1, 2), (2, 0)]):
        assert type(value) is float


def test_sample_matrix_one_stream_per_row():
    """Row b of the matrix equals sample_many on row b's own stream."""
    model = UniformLatency(0.5, 2.0)
    edges = [(s, d) for s in range(4) for d in range(4)]
    seeds = (11, 22, 33)
    matrix = model.sample_matrix([random.Random(s) for s in seeds], edges)
    for seed, row in zip(seeds, matrix):
        assert list(row) == model.sample_many(random.Random(seed), edges)


# ------------------------------------------------------------- the planner


def test_plan_deterministic_cells_replicate():
    for name in ("fault-free", "worst_case", "silent_minority",
                 "crash_storm", "partition_heal"):
        scenario = get_scenario(name)
        for engine in ("lockstep", "timed"):
            plan = plan_cell(scenario, engine)
            assert plan.mode == MODE_REPLICATE, (name, engine, plan)


def test_plan_stochastic_cells_split_by_engine():
    for name in ("lossy_channel", "flaky_gst", "async_then_sync"):
        scenario = get_scenario(name)
        assert plan_cell(scenario, "lockstep").mode == MODE_SCALAR, name
        assert plan_cell(scenario, "timed").mode == MODE_COLUMNAR, name


def test_plan_randomized_coin_forces_scalar():
    scenario = get_scenario("fault-free")

    class CoinConfig:
        coin = staticmethod(lambda phase: "1")

    assert plan_cell(scenario, "lockstep", CoinConfig()).mode == MODE_SCALAR


def test_plan_unknown_strategy_forces_scalar():
    scenario = dataclasses.replace(
        get_scenario("worst_case"), byzantine=("some-future-adversary",)
    )
    assert plan_cell(scenario, "lockstep").mode == MODE_SCALAR


def test_plan_slow_scheduler_env_forces_scalar_on_columnar(monkeypatch):
    scenario = get_scenario("lossy_channel")
    monkeypatch.setenv("REPRO_SLOW_SCHEDULER", "1")
    assert plan_cell(scenario, "timed").mode == MODE_SCALAR
    monkeypatch.delenv("REPRO_SLOW_SCHEDULER")
    assert plan_cell(scenario, "timed").mode == MODE_COLUMNAR


# --------------------------------------------------- run_batch byte-identity


def _cell_runs(scenario_name, engine, repetitions=6):
    spec = dataclasses.replace(
        GAUNTLET,
        scenarios=(scenario_name,),
        algorithms=("class-2",),
        models=((7, 1, 1),),
        engines=(engine,),
        repetitions=repetitions,
    )
    runs = list(spec.iter_runs())
    assert len({cell_key(run) for run in runs}) == 1
    return runs


def _assert_rows_match_oracle(runs, rows):
    assert len(rows) == len(runs)
    for run, row in zip(runs, rows):
        assert row["run_id"] == run.run_id
        assert row_to_json(row) == row_to_json(execute_run(run))


@pytest.mark.parametrize(
    "scenario,engine,expected_mode",
    [
        ("fault-free", "lockstep", MODE_REPLICATE),
        ("partition_heal", "timed", MODE_REPLICATE),
        ("flaky_gst", "timed", MODE_COLUMNAR_STATE),
        ("lossy_channel", "timed", MODE_COLUMNAR_STATE),
        ("lossy_channel", "lockstep", MODE_SCALAR),
        # adaptive-liar reads its inbox, so the cell stays per-run columnar.
        ("async_then_sync", "timed", MODE_COLUMNAR),
    ],
)
def test_run_batch_matches_oracle(scenario, engine, expected_mode):
    runs = _cell_runs(scenario, engine)
    assert plan_for_run(runs[0]).mode == expected_mode
    _assert_rows_match_oracle(runs, run_batch(runs))


@pytest.mark.parametrize(
    "scenario,engine",
    [("partition_heal", "timed"), ("flaky_gst", "timed")],
)
def test_run_batch_matches_oracle_without_numpy(
    monkeypatch, scenario, engine
):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    runs = _cell_runs(scenario, engine)
    _assert_rows_match_oracle(runs, run_batch(runs))


def test_run_batch_rows_independent_of_batch_composition():
    """Dropping runs from a batch leaves the remaining rows' bytes alone."""
    runs = _cell_runs("flaky_gst", "timed", repetitions=6)
    full = run_batch(runs)
    subset = [runs[1], runs[4]]
    partial = run_batch(subset)
    assert [row_to_json(r) for r in partial] == [
        row_to_json(full[1]),
        row_to_json(full[4]),
    ]


def test_run_batch_tags_rows_with_backend():
    runs = _cell_runs("fault-free", "lockstep", repetitions=3)
    rows = run_batch(runs)
    assert {row["_backend"] for row in rows} == {"replicate"}
    # Volatile: the canonical serialization never carries the tag.
    assert all('"_backend"' not in row_to_json(row) for row in rows)


def test_run_batch_counts_telemetry():
    from repro.observability import Telemetry

    telemetry = Telemetry()
    runs = _cell_runs("lossy_channel", "timed", repetitions=4)
    run_batch(runs, telemetry=telemetry)
    assert telemetry.counters["batch.rows"] == 4
    # Without numpy the columnar-state tier demotes to per-run columnar
    # at build time, and the counter follows the tier that actually ran.
    tier = "batch.columnar_state_rows" if HAVE_NUMPY else "batch.columnar_rows"
    assert telemetry.counters[tier] == 4
    assert "scheduler.batch" in telemetry.span_names

    telemetry = Telemetry()
    run_batch(_cell_runs("lossy_channel", "lockstep", repetitions=4),
              telemetry=telemetry)
    assert telemetry.counters["batch.fallback_scalar"] == 4


def test_run_batch_inadmissible_cell_matches_oracle():
    """Resolution failures degrade to the scalar tier's proper rows."""
    spec = dataclasses.replace(
        GAUNTLET,
        scenarios=("fault-free",),
        algorithms=("class-2",),
        models=((3, 1, 1),),  # violates n > 4b + 2f
        engines=("lockstep",),
        repetitions=4,
    )
    runs = list(spec.iter_runs())
    assert plan_for_run(runs[0]).mode == MODE_SCALAR
    rows = run_batch(runs)
    assert {row["status"] for row in rows} == {"inadmissible"}
    _assert_rows_match_oracle(runs, rows)


def test_run_batch_inapplicable_cell_matches_oracle():
    """The columnar prologue maps ScenarioInapplicable like the oracle."""
    spec = dataclasses.replace(
        GAUNTLET,
        scenarios=("async_then_sync",),  # byzantine placement, but b = 0
        algorithms=("class-2",),
        models=((4, 0, 1),),
        engines=("timed",),
        repetitions=3,
    )
    runs = list(spec.iter_runs())
    assert plan_for_run(runs[0]).mode == MODE_COLUMNAR
    rows = run_batch(runs)
    assert {row["status"] for row in rows} == {"inapplicable"}
    _assert_rows_match_oracle(runs, rows)


def test_execute_chunk_groups_cells_and_matches_scalar():
    from repro.campaigns.runner import execute_chunk

    spec = dataclasses.replace(GAUNTLET, repetitions=2)
    runs = list(spec.iter_runs())[:24]
    scalar = execute_chunk(tuple(runs), False, "scalar")
    batch = execute_chunk(tuple(runs), False, "batch")
    assert [row_to_json(r) for r in batch] == [row_to_json(r) for r in scalar]


def test_resolve_backend_env_and_validation(monkeypatch):
    from repro.campaigns.runner import resolve_backend

    assert resolve_backend() == "auto"
    assert resolve_backend("scalar") == "scalar"
    monkeypatch.setenv("REPRO_BACKEND", "batch")
    assert resolve_backend() == "batch"
    assert resolve_backend("scalar") == "scalar"  # explicit arg wins
    with pytest.raises(ValueError):
        resolve_backend("vectorized")
