"""Lockstep-vs-timed equivalence: one transition system, two clocks.

With a reliable network that is synchronous from the start (``gst = 0``,
every latency ≤ δ and ``Δ ≥ δ``), the timed scheduler delivers every message
within its round deadline — exactly the ``Pgood``/``Pcons`` oracle the
lockstep scheduler realizes.  The two disciplines must then produce the same
executions: identical decisions (value, round, phase) and identical round
counts, for every algorithm class and fault script.
"""

import pytest

from repro.algorithms import (
    build_chandra_toueg,
    build_fab_paxos,
    build_mqb,
    build_one_third_rule,
    build_paxos,
    build_pbft,
)
from repro.engine.assembly import build_instance
from repro.engine.kernel import OBSERVE_METRICS, run_instance
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.eventsim.network import FixedLatency, PartialSynchronyNetwork


def reliable_network():
    """Synchronous from time 0 with latency ≤ δ < Δ: every round is good."""
    return PartialSynchronyNetwork(FixedLatency(1.0), gst=0.0, delta=2.0, seed=0)


def run_both(spec, byzantine):
    model = spec.parameters.model
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }

    def execute(scheduler):
        instance = build_instance(
            spec.parameters, values, config=spec.config, byzantine=byzantine
        )
        return run_instance(
            instance, scheduler, max_phases=12, observe=OBSERVE_METRICS
        )

    lockstep = execute(LockstepScheduler())
    timed = execute(TimedScheduler(reliable_network(), round_duration=2.5))
    return lockstep, timed


ALGORITHMS = [
    ("one-third-rule", build_one_third_rule, 4),
    ("fab-paxos", build_fab_paxos, 6),
    ("mqb", build_mqb, 5),
    ("paxos", build_paxos, 3),
    ("chandra-toueg", build_chandra_toueg, 3),
    ("pbft", build_pbft, 4),
]

#: Scripted adversaries whose behaviour does not depend on the discipline.
STRATEGIES = ["silent", "equivocator", "vote-flipper", "high-ts-liar",
              "fake-history-liar"]


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("name,builder,n", ALGORITHMS)
    def test_same_decisions_and_round_counts(self, name, builder, n):
        lockstep, timed = run_both(builder(n), byzantine={})
        assert lockstep.decisions == timed.decisions
        assert lockstep.rounds_executed == timed.rounds_executed
        assert lockstep.all_correct_decided and timed.all_correct_decided

    @pytest.mark.parametrize("name,builder,n", ALGORITHMS)
    def test_same_message_accounting(self, name, builder, n):
        lockstep, timed = run_both(builder(n), byzantine={})
        assert lockstep.messages_sent == timed.messages_sent
        # Under a reliable synchronous network nothing misses its deadline.
        assert timed.messages_dropped == 0


class TestByzantineEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize(
        "builder,n", [(build_pbft, 4), (build_mqb, 5), (build_fab_paxos, 6)]
    )
    def test_same_decisions_under_attack(self, builder, n, strategy):
        spec = builder(n)
        model = spec.parameters.model
        byzantine = {model.n - 1: strategy}
        lockstep, timed = run_both(spec, byzantine)
        assert lockstep.decisions == timed.decisions
        assert lockstep.rounds_executed == timed.rounds_executed
        assert lockstep.agreement_holds and timed.agreement_holds


class TestDivergenceOutsideTheOverlap:
    def test_pre_gst_timed_runs_may_starve_rounds(self):
        """Before the GST the timed discipline loses messages — the regime
        where the two schedulers legitimately differ."""
        spec = build_pbft(4)
        model = spec.parameters.model
        values = {pid: f"v{pid % 2}" for pid in range(3)}
        instance = build_instance(
            spec.parameters, values, byzantine={model.n - 1: "equivocator"}
        )
        chaotic = PartialSynchronyNetwork(
            FixedLatency(1.0), gst=1e9, delta=2.0,
            pre_gst_delay_prob=0.9, seed=3,
        )
        timed = run_instance(
            instance,
            TimedScheduler(chaotic, round_duration=2.5),
            max_phases=8,
            observe=OBSERVE_METRICS,
        )
        assert timed.messages_dropped > 0
        assert timed.agreement_holds  # safety must survive regardless
