"""Fault-inject the batch tiers: a tier that *raises* must demote cleanly.

The planned tiers (replicate / columnar-state / columnar) demote by
returning ``None`` rows when they cannot hold the oracle-identity
contract.  This suite forces the uglier failure mode — an exception
escaping tier production itself — and pins the demotion path:
``run_batch`` never raises, every row re-executes through the per-run
scalar oracle byte-identically, and the ``batch.fallback_scalar``
telemetry counter accounts for the whole cell.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import CampaignSpec
from repro.campaigns.runner import execute_chunk
from repro.engine.batch import (
    MODE_COLUMNAR_STATE,
    MODE_REPLICATE,
    plan_for_run,
    run_batch,
)
from repro.observability import Telemetry
from repro.scenarios import CommSpec, ScenarioSpec, register_scenario
from repro.scenarios.registry import SCENARIO_REGISTRY


def canonical(rows):
    return [
        json.dumps(
            {k: v for k, v in row.items() if not k.startswith("_")},
            sort_keys=True,
        )
        for row in rows
    ]


@pytest.fixture()
def byz_lossy_scenario():
    spec = ScenarioSpec(
        name="byz_lossy_fault_injection",
        byzantine=("equivocator", "high-ts-liar"),
        comm=CommSpec(kind="lossy", drop_prob=0.3),
        max_phases=15,
    )
    register_scenario(spec)
    try:
        yield spec
    finally:
        del SCENARIO_REGISTRY[spec.name]


@pytest.fixture()
def columnar_state_runs(byz_lossy_scenario):
    """One campaign cell every run of which plans the columnar-state tier."""
    spec = CampaignSpec(
        name="byz-lossy-fault-injection",
        algorithms=("class-3",),
        models=((11, 2, 1),),
        engines=("timed",),
        scenarios=(byz_lossy_scenario.name,),
        repetitions=6,
        seed=13,
    )
    runs = tuple(spec.iter_runs())
    assert all(plan_for_run(run).mode == MODE_COLUMNAR_STATE for run in runs)
    return runs


def test_columnar_state_exception_demotes_to_scalar(
    monkeypatch, columnar_state_runs
):
    """A columnar-state build that raises re-executes the cell scalar."""
    runs = columnar_state_runs

    def exploding(_runs):
        raise RuntimeError("injected: columnar-state template broke")

    monkeypatch.setattr(
        "repro.engine.batch.kernel.columnar_state_rows", exploding
    )
    oracle = canonical(execute_chunk(runs, False, "scalar"))
    telemetry = Telemetry()
    rows = run_batch(runs, telemetry=telemetry)
    assert canonical(rows) == oracle
    assert all(row["_backend"] == "scalar" for row in rows)
    assert telemetry.counters["batch.fallback_scalar"] == len(runs)
    assert "batch.columnar_state_rows" not in telemetry.counters
    assert "batch.columnar_rows" not in telemetry.counters


def test_columnar_row_loop_exception_demotes_to_scalar(
    monkeypatch, columnar_state_runs
):
    """If the per-run columnar tier raises too, the oracle still answers."""
    runs = columnar_state_runs

    def exploding(*_args, **_kwargs):
        raise RuntimeError("injected: tier blew up")

    monkeypatch.setattr(
        "repro.engine.batch.kernel.columnar_state_rows", exploding
    )
    monkeypatch.setattr("repro.engine.batch.kernel._columnar_rows", exploding)
    oracle = canonical(execute_chunk(runs, False, "scalar"))
    telemetry = Telemetry()
    rows = run_batch(runs, telemetry=telemetry)
    assert canonical(rows) == oracle
    assert telemetry.counters["batch.fallback_scalar"] == len(runs)


def test_replicate_exception_demotes_to_scalar(monkeypatch):
    """The replicate tier's fault injection: same demotion contract."""
    spec = CampaignSpec(
        name="replicate-fault-injection",
        algorithms=("pbft",),
        models=((4, 1, 0),),
        engines=("lockstep",),
        scenarios=("fault-free",),
        repetitions=5,
        seed=2,
    )
    runs = tuple(spec.iter_runs())
    assert all(plan_for_run(run).mode == MODE_REPLICATE for run in runs)

    def exploding(_runs):
        raise RuntimeError("injected: replicate broke")

    monkeypatch.setattr("repro.engine.batch.kernel._replicate_rows", exploding)
    oracle = canonical(execute_chunk(runs, False, "scalar"))
    telemetry = Telemetry()
    rows = run_batch(runs, telemetry=telemetry)
    assert canonical(rows) == oracle
    assert telemetry.counters["batch.fallback_scalar"] == len(runs)
    assert "batch.replicated_rows" not in telemetry.counters
