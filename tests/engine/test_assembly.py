"""Instance assembly and the public Byzantine-strategy registry."""

import pytest

from repro.algorithms import build_pbft
from repro.core.process import GenericConsensusProcess
from repro.core.run import STRATEGY_REGISTRY as LEGACY_REGISTRY
from repro.core.run import _build_byzantine
from repro.engine.assembly import build_instance
from repro.faults import STRATEGY_REGISTRY, build_byzantine
from repro.faults.byzantine import ByzantineStrategy, SilentByzantine


@pytest.fixture
def pbft4():
    return build_pbft(4)


class TestBuildInstance:
    def test_assembles_honest_and_byzantine(self, pbft4):
        instance = build_instance(
            pbft4.parameters,
            {0: "a", 1: "b", 2: "a"},
            byzantine={3: "equivocator"},
        )
        assert set(instance.processes) == {0, 1, 2, 3}
        assert isinstance(instance.processes[0], GenericConsensusProcess)
        assert isinstance(instance.processes[3], ByzantineStrategy)
        assert instance.context.byzantine == frozenset({3})
        assert instance.initial_values == {0: "a", 1: "b", 2: "a"}

    def test_missing_initial_value(self, pbft4):
        with pytest.raises(ValueError, match="missing initial value"):
            build_instance(pbft4.parameters, {0: "a"})

    def test_byzantine_budget_enforced(self, pbft4):
        with pytest.raises(ValueError, match="exceed b"):
            build_instance(
                pbft4.parameters,
                {0: "a", 1: "b"},
                byzantine={2: "silent", 3: "silent"},
            )

    def test_config_factory_gives_distinct_configs(self, pbft4):
        from repro.core.parameters import GenericConsensusConfig

        configs = {}

        def config_for(pid):
            configs[pid] = GenericConsensusConfig()
            return configs[pid]

        instance = build_instance(
            pbft4.parameters,
            {pid: "v" for pid in range(4)},
            config_for=config_for,
        )
        assert set(configs) == {0, 1, 2, 3}
        for pid, process in instance.honest_processes.items():
            assert process.config is configs[pid]

    def test_shared_structure_is_reused(self, pbft4):
        values = {pid: "v" for pid in range(4)}
        first = build_instance(pbft4.parameters, values)
        second = build_instance(pbft4.parameters, values)
        assert first.structure is second.structure


class TestRegistry:
    def test_names_resolve(self, pbft4):
        for name in STRATEGY_REGISTRY:
            strategy = build_byzantine(3, name, pbft4.parameters)
            assert isinstance(strategy, ByzantineStrategy)

    def test_instance_passthrough(self, pbft4):
        strategy = SilentByzantine(3, pbft4.parameters)
        assert build_byzantine(3, strategy, pbft4.parameters) is strategy

    def test_factory_spec(self, pbft4):
        built = build_byzantine(3, SilentByzantine, pbft4.parameters)
        assert isinstance(built, SilentByzantine)

    def test_unknown_name(self, pbft4):
        with pytest.raises(ValueError, match="unknown Byzantine strategy"):
            build_byzantine(3, "no-such-strategy", pbft4.parameters)

    def test_legacy_registry_is_the_same_object(self):
        assert LEGACY_REGISTRY is STRATEGY_REGISTRY

    def test_private_alias_is_deprecated(self, pbft4):
        with pytest.warns(DeprecationWarning, match="build_byzantine"):
            strategy = _build_byzantine(3, "silent", pbft4.parameters)
        assert isinstance(strategy, SilentByzantine)
