"""Kernel observation modes: metrics parity with full, trace-free hot path."""

import pytest

from repro.algorithms import build_mqb, build_one_third_rule, build_pbft
from repro.analysis.metrics import RunMetrics
from repro.engine.assembly import build_instance
from repro.engine.kernel import (
    OBSERVE_FULL,
    OBSERVE_METRICS,
    ExecutionKernel,
    run_instance,
)
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.eventsim.network import PartialSynchronyNetwork, UniformLatency
from repro.eventsim.runtime import run_timed_consensus
from repro.faults.crash import CrashEvent, CrashSchedule


def sync_network(seed=7):
    return PartialSynchronyNetwork(
        UniformLatency(0.5, 2.0), gst=0.0, delta=2.0, seed=seed
    )


def run_cell(spec, *, byzantine=None, engine="lockstep", observe=OBSERVE_FULL,
             crash_schedule=None, seed=7):
    model = spec.parameters.model
    byzantine = byzantine or {}
    values = {
        pid: f"v{pid % 2}" for pid in model.processes if pid not in byzantine
    }
    instance = build_instance(
        spec.parameters, values, config=spec.config, byzantine=byzantine
    )
    if engine == "lockstep":
        scheduler = LockstepScheduler()
    else:
        scheduler = TimedScheduler(sync_network(seed), round_duration=2.5)
    return run_instance(
        instance,
        scheduler,
        max_phases=12,
        observe=observe,
        crash_schedule=crash_schedule,
    )


CELLS = [
    (build_pbft(4), {3: "equivocator"}),
    (build_pbft(4), {}),
    (build_mqb(5), {4: "vote-flipper"}),
    (build_one_third_rule(4), {}),
]


class TestMetricsParity:
    @pytest.mark.parametrize("spec,byz", CELLS)
    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    def test_same_decisions_and_counters_as_full(self, spec, byz, engine):
        full = run_cell(spec, byzantine=byz, engine=engine, observe=OBSERVE_FULL)
        fast = run_cell(spec, byzantine=byz, engine=engine, observe=OBSERVE_METRICS)
        assert fast.decisions == full.decisions
        assert fast.decision_times == full.decision_times
        assert fast.rounds_executed == full.rounds_executed
        assert fast.messages_sent == full.messages_sent
        assert fast.messages_delivered == full.messages_delivered
        assert fast.messages_dropped == full.messages_dropped
        assert fast.simulated_time == full.simulated_time
        assert dict(fast.invariant_report()) == dict(full.invariant_report())
        assert fast.phases_to_last_decision == full.phases_to_last_decision

    def test_metrics_mode_allocates_no_trace(self):
        outcome = run_cell(build_pbft(4), observe=OBSERVE_METRICS)
        assert outcome.trace is None
        assert outcome.observe == OBSERVE_METRICS

    def test_full_mode_records_trace_and_snapshots(self):
        outcome = run_cell(build_pbft(4), observe=OBSERVE_FULL)
        assert outcome.trace is not None
        assert outcome.trace.rounds_executed == outcome.rounds_executed
        # Full observation records per-round snapshot dicts by default.
        assert any(record.snapshots for record in outcome.trace.records)

    def test_run_metrics_accepts_both_outcome_flavours(self):
        full = run_cell(build_pbft(4), observe=OBSERVE_FULL)
        fast = run_cell(build_pbft(4), observe=OBSERVE_METRICS)
        assert RunMetrics.from_outcome(fast) == RunMetrics.from_outcome(full)

    def test_unknown_observe_mode_rejected(self):
        spec = build_pbft(4)
        instance = build_instance(
            spec.parameters, {pid: "v" for pid in range(4)}
        )
        with pytest.raises(ValueError, match="observe"):
            ExecutionKernel(
                spec.parameters.model,
                instance.processes,
                LockstepScheduler(),
                instance.structure.info,
                context=instance.context,
                observe="everything",
            )


class TestTimedFullObservation:
    def test_timed_full_run_reports_trace_and_invariants(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "a"},
            sync_network(),
            round_duration=2.5,
            byzantine={3: "equivocator"},
            observe="full",
        )
        assert outcome.trace is not None
        assert outcome.trace.rounds_executed == outcome.rounds_executed
        # Under synchrony from the start every round is good.
        assert all(record.pgood for record in outcome.trace.records)
        report = dict(outcome.invariant_report())
        assert report == {
            "agreement": True,
            "validity": True,
            "unanimity": True,
            "termination": True,
        }

    def test_timed_metrics_run_matches_legacy_shape(self):
        spec = build_pbft(4)
        outcome = run_timed_consensus(
            spec.parameters,
            {0: "a", 1: "b", 2: "a"},
            sync_network(),
            round_duration=2.5,
            byzantine={3: "equivocator"},
        )
        assert outcome.trace is None
        assert outcome.agreement_holds
        assert outcome.rounds_executed == 3
        assert outcome.last_decision_time == pytest.approx(7.5)

    def test_timed_scheduler_is_safe_to_reuse_across_runs(self):
        """Binding a kernel resets the scheduler's clock and queue."""
        spec = build_pbft(4)
        scheduler = TimedScheduler(sync_network(), round_duration=2.5)
        values = {pid: "v" for pid in range(4)}

        def run_once():
            instance = build_instance(spec.parameters, values)
            return run_instance(instance, scheduler, max_phases=12)

        first = run_once()
        second = run_once()
        assert first.decision_times == second.decision_times
        assert second.simulated_time == first.simulated_time

    def test_timed_runs_accept_a_crash_schedule(self):
        spec = build_one_third_rule(4)
        model = spec.parameters.model
        schedule = CrashSchedule(model, [CrashEvent(0, 1)])
        outcome = run_cell(
            spec, engine="timed", observe=OBSERVE_FULL, crash_schedule=schedule
        )
        assert 0 in outcome.context.crashed
        assert 0 not in outcome.decisions
        assert outcome.agreement_holds
        # The surviving correct processes still decide.
        assert outcome.all_correct_decided
