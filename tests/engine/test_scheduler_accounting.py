"""Scheduler-level guarantees: canonicalization order and drop accounting.

Two properties pinned at the :meth:`deliver_round` level:

* the payload an equivocator is canonicalized to in a selection round must
  not depend on the delivery filter — which edge survives a partition must
  never change *what* the survivors receive (cross-branch parity with the
  filter-free fast path);
* ``sent == delivered + dropped`` holds on **both** scheduler branches: the
  lockstep scheduler reports messages its policy withheld as dropped, the
  timed scheduler reports deadline misses and filtered edges.
"""

import pytest

from repro.core.types import FaultModel, RoundInfo, RoundKind
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.eventsim.network import FixedLatency, PartialSynchronyNetwork
from repro.rounds.base import RunContext
from repro.rounds.policies import DeliveryPolicy

SELECTION = RoundInfo(number=1, phase=1, kind=RoundKind.SELECTION)


def make_timed(delivery_filter=None):
    network = PartialSynchronyNetwork(
        FixedLatency(1.0), gst=0.0, delta=2.0, seed=0
    )
    scheduler = TimedScheduler(
        network, round_duration=2.5, delivery_filter=delivery_filter
    )
    scheduler.reset()
    return scheduler


def equivocating_outbound():
    """Sender 3 equivocates: a different payload on every edge."""
    outbound = {
        pid: {dest: f"h{pid}" for dest in range(4)} for pid in range(3)
    }
    outbound[3] = {0: "alpha", 1: "beta", 2: "gamma"}
    return outbound


def byz_context():
    return RunContext(FaultModel(4, 1, 0), byzantine=frozenset({3}))


class TestCanonicalizationBeforeFilter:
    def test_filtered_branch_matches_filter_free_payloads(self):
        """Dropping the edge that carried the canonical payload must not
        change which payload the surviving receivers see."""
        reference = make_timed().deliver_round(
            SELECTION, equivocating_outbound(), byz_context()
        )
        # All receivers see the equivocator pinned to its first payload.
        expected = {
            dest: delivered[3]
            for dest, delivered in reference.matrix.items()
            if 3 in delivered
        }
        assert set(expected.values()) == {"alpha"}

        def drop_byz_to_0(info, sender, dest, ctx):
            return not (sender == 3 and dest == 0)

        filtered = make_timed(drop_byz_to_0).deliver_round(
            SELECTION, equivocating_outbound(), byz_context()
        )
        for dest, delivered in filtered.matrix.items():
            if 3 in delivered:
                assert delivered[3] == expected[dest]
        # The suppressed edge is really gone — and counted.
        assert 3 not in filtered.matrix.get(0, {})
        assert filtered.dropped == 1

    def test_pass_all_filter_is_identical_to_no_filter(self):
        reference = make_timed().deliver_round(
            SELECTION, equivocating_outbound(), byz_context()
        )
        filtered = make_timed(lambda *_: True).deliver_round(
            SELECTION, equivocating_outbound(), byz_context()
        )
        assert filtered.matrix == reference.matrix
        assert filtered.dropped == reference.dropped


class _DropReceiverZero(DeliveryPolicy):
    """Withholds every message addressed to process 0."""

    def deliver(self, info, outbound, ctx):
        matrix = {}
        for sender, messages in outbound.items():
            for dest, payload in messages.items():
                if dest == 0:
                    continue
                matrix.setdefault(dest, {})[sender] = payload
        return matrix


class TestDropAccounting:
    @staticmethod
    def _counts(delivery, outbound):
        sent = sum(len(messages) for messages in outbound.values())
        delivered = sum(len(received) for received in delivery.matrix.values())
        return sent, delivered

    def test_lockstep_reports_withheld_messages_as_dropped(self):
        outbound = equivocating_outbound()
        delivery = LockstepScheduler(_DropReceiverZero()).deliver_round(
            SELECTION, outbound, byz_context()
        )
        sent, delivered = self._counts(delivery, outbound)
        assert delivery.dropped == sent - delivered > 0

    def test_lockstep_injected_deliveries_never_go_negative(self):
        """A Pcons oracle fans a partial sender's canonical payload to
        audience members it never addressed (delivered > sent); dropped
        must count only sent-edge losses, never go negative."""
        outbound = {
            pid: {dest: f"h{pid}" for dest in range(4)} for pid in range(2)
        }
        outbound[2] = {0: "partial"}  # e.g. an unclean mid-round crash
        delivery = LockstepScheduler().deliver_round(
            SELECTION, outbound, byz_context()
        )
        assert delivery.dropped >= 0
        missing = sum(
            1
            for sender, messages in outbound.items()
            for dest in messages
            if sender not in delivery.matrix.get(dest, {})
        )
        assert delivery.dropped == missing

    def test_lockstep_reliable_drops_nothing(self):
        outbound = equivocating_outbound()
        delivery = LockstepScheduler().deliver_round(
            SELECTION, outbound, byz_context()
        )
        sent, delivered = self._counts(delivery, outbound)
        assert sent == delivered
        assert delivery.dropped == 0

    @pytest.mark.parametrize("use_filter", [False, True])
    def test_timed_accounting_closes(self, use_filter):
        flt = (lambda info, s, d, ctx: d != 0) if use_filter else None
        outbound = equivocating_outbound()
        delivery = make_timed(flt).deliver_round(
            SELECTION, outbound, byz_context()
        )
        sent, delivered = self._counts(delivery, outbound)
        assert sent == delivered + delivery.dropped
