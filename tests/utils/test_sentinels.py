"""Sentinel singleton semantics."""

import pickle

from repro.utils.sentinels import ANY_VALUE, NULL_VALUE, Sentinel


def test_sentinels_are_distinct():
    assert ANY_VALUE is not NULL_VALUE
    assert ANY_VALUE != NULL_VALUE


def test_sentinels_do_not_equal_values():
    for candidate in (None, 0, False, "", "ANY", "NULL", (), frozenset()):
        assert ANY_VALUE != candidate
        assert NULL_VALUE != candidate


def test_sentinel_repr():
    assert repr(ANY_VALUE) == "<ANY>"
    assert repr(NULL_VALUE) == "<NULL>"


def test_sentinels_survive_pickling_as_singletons():
    assert pickle.loads(pickle.dumps(ANY_VALUE)) is ANY_VALUE
    assert pickle.loads(pickle.dumps(NULL_VALUE)) is NULL_VALUE


def test_same_name_sentinels_are_not_equal():
    assert Sentinel("ANY") is not ANY_VALUE
    assert Sentinel("ANY") != ANY_VALUE


def test_sentinel_hashable_by_identity():
    pool = {ANY_VALUE, NULL_VALUE, ANY_VALUE}
    assert len(pool) == 2
