"""Seeded RNG streams: reproducibility and independence."""

from repro.utils.rng import SeededRng


def test_same_key_same_stream():
    a = SeededRng(1).stream("coin", process=2)
    b = SeededRng(1).stream("coin", process=2)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    a = SeededRng(1).stream("coin")
    b = SeededRng(1).stream("latency")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_scope_independent():
    a = SeededRng(1).stream("coin", process=0)
    b = SeededRng(1).stream("coin", process=1)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = SeededRng(1).stream("coin")
    b = SeededRng(2).stream("coin")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_is_deterministic():
    a = SeededRng(7).spawn("child").stream("x")
    b = SeededRng(7).spawn("child").stream("x")
    assert a.random() == b.random()


def test_coin_flips_are_binary():
    flips = SeededRng(3).coin_flips("c")
    sample = [next(flips) for _ in range(100)]
    assert set(sample) <= {0, 1}
    # A fair coin almost surely produces both outcomes in 100 flips.
    assert len(set(sample)) == 2
