"""Deterministic choice and counting helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.det import (
    deterministic_choice,
    majority_value,
    most_often_smallest,
    strict_majority,
    value_counts,
)


def test_deterministic_choice_single():
    assert deterministic_choice(["x"]) == "x"


def test_deterministic_choice_is_order_independent():
    assert deterministic_choice(["b", "a", "c"]) == deterministic_choice(
        ["c", "a", "b"]
    )


def test_deterministic_choice_mixed_types():
    # Must not raise on incomparable types.
    result = deterministic_choice([3, "a", (1, 2)])
    assert result in {3, "a", (1, 2)}


def test_deterministic_choice_empty_raises():
    with pytest.raises(ValueError):
        deterministic_choice([])


@given(st.lists(st.one_of(st.integers(), st.text()), min_size=1))
def test_deterministic_choice_stable_under_permutation(values):
    assert deterministic_choice(values) == deterministic_choice(
        list(reversed(values))
    )


@given(st.lists(st.one_of(st.integers(), st.text()), min_size=1))
def test_deterministic_choice_returns_member(values):
    assert deterministic_choice(values) in values


def test_majority_value_present():
    assert majority_value(["a", "a", "b"]) == "a"


def test_majority_value_absent_on_tie():
    assert majority_value(["a", "a", "b", "b"]) is None


def test_majority_value_empty():
    assert majority_value([]) is None


def test_strict_majority_boundaries():
    assert strict_majority(3, 5)
    assert not strict_majority(2, 4)
    assert strict_majority(3, 4)


def test_value_counts_multiset():
    counts = value_counts(["a", "b", "a"])
    assert counts["a"] == 2 and counts["b"] == 1


def test_most_often_smallest_tie_break():
    # 1 and 2 both occur twice → deterministic tie-break picks one stably.
    first = most_often_smallest([2, 1, 2, 1])
    second = most_often_smallest([1, 2, 1, 2])
    assert first == second


def test_most_often_smallest_prefers_frequency():
    assert most_often_smallest(["z", "z", "a"]) == "z"


def test_most_often_smallest_empty_raises():
    with pytest.raises(ValueError):
        most_often_smallest([])
