"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.types import FaultModel, SelectionMessage


@pytest.fixture
def benign_model() -> FaultModel:
    """A 3-process benign model tolerating one crash (Paxos minimum)."""
    return FaultModel(n=3, b=0, f=1)


@pytest.fixture
def pbft_model() -> FaultModel:
    """The PBFT minimum: n = 3b + 1 with b = 1."""
    return FaultModel(n=4, b=1, f=0)


@pytest.fixture
def mqb_model() -> FaultModel:
    """The MQB minimum: n = 4b + 1 with b = 1."""
    return FaultModel(n=5, b=1, f=0)


@pytest.fixture
def fab_model() -> FaultModel:
    """The FaB Paxos minimum: n = 5b + 1 with b = 1."""
    return FaultModel(n=6, b=1, f=0)


def sel_msg(vote, ts=0, history=None, selector=frozenset()):
    """Shorthand for building selection messages in FLV tests."""
    if history is None:
        history = frozenset({(vote, 0)})
    return SelectionMessage(
        vote=vote, ts=ts, history=frozenset(history), selector=frozenset(selector)
    )


def class_params(cls: AlgorithmClass, model: FaultModel, **kwargs):
    return build_class_parameters(cls, model, **kwargs)
