"""The scenarios campaign axis and its legacy fold-in."""

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS
from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import CampaignSpec, FaultSpec, NetworkSpec
from repro.scenarios import ScenarioSpec, get_scenario
from repro.scenarios.spec import CommSpec


def scenario_spec(**overrides):
    kwargs = dict(
        name="scenario-unit",
        algorithms=("pbft",),
        models=((4, 1, 0),),
        engines=("lockstep", "timed"),
        scenarios=("fault-free", "worst_case", "partition_heal"),
        seed=3,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestScenarioAxis:
    def test_names_resolve_through_registry(self):
        spec = scenario_spec()
        assert spec.scenarios == (
            get_scenario("fault-free"),
            get_scenario("worst_case"),
            get_scenario("partition_heal"),
        )

    def test_total_runs_counts_scenarios(self):
        assert scenario_spec().total_runs == 1 * 1 * 2 * 3

    def test_inline_spec_accepted(self):
        inline = ScenarioSpec(
            name="inline", comm=CommSpec(kind="lossy", drop_prob=0.1)
        )
        spec = scenario_spec(scenarios=(inline,))
        rows = run_campaign(spec)
        assert {row["status"] for row in rows} == {"ok"}
        assert all(row["fault"] == "lossy:0.1" for row in rows)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_spec(scenarios=("no-such-scenario",))

    def test_both_axes_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            scenario_spec(faults=(FaultSpec(),))

    def test_rows_ok_across_engines(self):
        rows = run_campaign(scenario_spec(), workers=2)
        assert len(rows) == 6
        assert {row["status"] for row in rows} == {"ok"}
        assert all(row["agreement"] is True for row in rows)

    def test_mapping_round_trip_with_scenarios(self):
        spec = scenario_spec()
        assert CampaignSpec.from_mapping(spec.to_mapping()) == spec

    def test_default_axes_round_trip(self):
        """A spec built with every axis defaulted must survive
        to_mapping/from_mapping unchanged (unset legacy axes stay unset)."""
        spec = CampaignSpec(
            name="defaults", algorithms=("pbft",), models=((4, 1, 0),)
        )
        assert CampaignSpec.from_mapping(spec.to_mapping()) == spec

    def test_scenario_names_load_from_mapping(self):
        spec = CampaignSpec.from_mapping(
            {
                "name": "by-name",
                "algorithms": ["pbft"],
                "models": [[4, 1, 0]],
                "scenarios": ["worst_case"],
            }
        )
        assert spec.scenarios == (get_scenario("worst_case"),)


class TestLegacyFoldIn:
    def test_legacy_axes_fold_to_scenarios(self):
        spec = CampaignSpec(
            name="legacy",
            algorithms=("pbft",),
            models=((4, 1, 0),),
            faults=(FaultSpec(), FaultSpec(byzantine="equivocator")),
            networks=(NetworkSpec(), NetworkSpec(gst=5.0)),
        )
        axis = spec.scenario_axis()
        assert len(axis) == 4
        # product order: fault-major, network-minor (the legacy grid order).
        assert axis[0].describe_fault() == "fault-free"
        assert axis[1].timing.gst == 5.0
        assert axis[2].describe_fault() == "byz:equivocator"

    def test_legacy_axes_keep_seeds(self):
        """Folding faults × networks into scenarios must not move any
        derived seed: keys hash the identical coordinate strings."""
        spec = CampaignSpec(
            name="seeds",
            algorithms=("pbft", "class-2"),
            models=((4, 1, 0),),
            engines=("lockstep", "timed"),
            faults=(FaultSpec(), FaultSpec(byzantine="silent"),
                    FaultSpec(crashes=-1)),
            networks=(NetworkSpec(gst=4.0),),
            seed=21,
        )
        for run in spec.expand():
            assert (
                run.scenario.describe_fault(),
                run.scenario.describe_network(),
            ) in {
                (fault.describe(), network.describe())
                for fault in spec.faults
                for network in spec.networks
            }


class TestGauntlet:
    def test_gauntlet_sweeps_every_registered_scenario(self):
        from repro.scenarios import SCENARIO_REGISTRY

        spec = BUILTIN_CAMPAIGNS["gauntlet"]
        swept = {scenario.name for scenario in spec.scenarios}
        assert swept == set(SCENARIO_REGISTRY)
        assert set(spec.engines) == {"lockstep", "timed"}

    def test_gauntlet_runs_clean(self):
        rows = run_campaign(BUILTIN_CAMPAIGNS["gauntlet"], workers=2)
        statuses = {row["status"] for row in rows}
        assert "error" not in statuses
        assert "ok" in statuses
        # Safety holds in every admitted cell of every environment.
        for row in rows:
            if row["status"] == "ok":
                assert row["agreement"] is True
                assert row["validity"] is True
        # ≥ 5 distinct scenarios actually execute on both engines.
        executed = {
            (row["fault"], row["engine"])
            for row in rows
            if row["status"] == "ok"
        }
        for engine in ("lockstep", "timed"):
            assert len({f for f, e in executed if e == engine}) >= 5
