"""Runner semantics: determinism across worker counts, fault isolation."""

import pytest

from repro.campaigns.results import rows_to_jsonl
from repro.campaigns.runner import execute_run, run_campaign
from repro.campaigns.spec import CampaignSpec, FaultSpec, NetworkSpec


def mixed_spec(**overrides):
    """A small grid crossing both engines and an adversarial fault."""
    kwargs = dict(
        name="runner-unit",
        algorithms=("pbft", "class-2"),
        models=((4, 1, 0), (5, 1, 0)),
        engines=("lockstep", "timed"),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator")),
        networks=(NetworkSpec(gst=4.0, pre_gst_delay_prob=0.6),),
        repetitions=2,
        seed=21,
        max_phases=12,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestDeterminism:
    def test_workers_1_and_4_byte_identical(self):
        spec = mixed_spec()
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=4)
        assert rows_to_jsonl(serial) == rows_to_jsonl(pooled)

    def test_rerun_is_byte_identical(self):
        spec = mixed_spec()
        assert rows_to_jsonl(run_campaign(spec)) == rows_to_jsonl(
            run_campaign(spec)
        )

    def test_campaign_seed_moves_timed_results(self):
        timed_only = mixed_spec(engines=("timed",))
        base = run_campaign(timed_only)
        moved = run_campaign(mixed_spec(engines=("timed",), seed=99))
        assert [row["seed"] for row in base] != [row["seed"] for row in moved]


class TestIsolation:
    def test_error_row_instead_of_crash(self):
        """An exploding cell records status=error; the rest still run."""
        spec = mixed_spec(
            algorithms=("pbft", "no-such-algorithm"),
            engines=("lockstep",),
        )
        rows = run_campaign(spec, workers=2)
        by_status = {}
        for row in rows:
            by_status.setdefault(row["status"], []).append(row)
        assert all(
            row["algorithm"] == "no-such-algorithm"
            for row in by_status["error"]
        )
        assert by_status["ok"], "healthy cells must still execute"
        assert all(
            "unknown algorithm" in row["error"] for row in by_status["error"]
        )

    def test_failing_strategy_is_isolated(self):
        rows = run_campaign(
            mixed_spec(
                engines=("lockstep",),
                faults=(FaultSpec(byzantine="no-such-strategy"),),
            )
        )
        # class-2 at n=4 is rejected by its bound before the fault script
        # runs; every admitted cell must fail with the strategy error.
        errors = [row for row in rows if row["status"] != "inadmissible"]
        assert errors
        assert all(row["status"] == "error" for row in errors)
        assert all(
            "unknown Byzantine strategy" in row["error"] for row in errors
        )

    def test_below_bound_is_inadmissible_not_error(self):
        rows = run_campaign(
            CampaignSpec(
                name="bounds",
                algorithms=("class-1",),
                models=((4, 1, 0), (6, 1, 0)),
            )
        )
        statuses = {row["n"]: row["status"] for row in rows}
        assert statuses == {4: "inadmissible", 6: "ok"}

    def test_unhosted_fault_envelope_is_inadmissible(self):
        """A benign algorithm cannot host a Byzantine grid point."""
        rows = run_campaign(
            CampaignSpec(
                name="envelope",
                algorithms=("one-third-rule", "pbft"),
                models=((6, 1, 0), (4, 0, 1)),
                faults=(FaultSpec(byzantine="equivocator"),
                        FaultSpec(crashes=-1)),
            )
        )
        statuses = {
            (row["algorithm"], row["n"], row["f"]): row["status"]
            for row in rows
            if row["status"] == "inadmissible"
        }
        # one-third-rule is benign-only (b=1 unhosted); pbft has f=0.
        assert ("one-third-rule", 6, 0) in statuses
        assert ("pbft", 4, 1) in statuses
        assert not any(row["status"] == "error" for row in rows)

    def test_inapplicable_fault_scripts(self):
        rows = run_campaign(
            CampaignSpec(
                name="inapplicable",
                algorithms=("paxos",),
                models=((3, 0, 1),),
                engines=("lockstep", "timed"),
                faults=(FaultSpec(byzantine="silent"), FaultSpec(crashes=-1)),
            )
        )
        statuses = {
            (row["engine"], row["fault"]): row["status"] for row in rows
        }
        # b = 0 hosts no Byzantine script; crash scripts execute through the
        # kernel's crash schedule on *both* engines.
        assert statuses[("lockstep", "byz:silent")] == "inapplicable"
        assert statuses[("timed", "byz:silent")] == "inapplicable"
        assert statuses[("timed", "crash:f@1")] == "ok"
        assert statuses[("lockstep", "crash:f@1")] == "ok"

    def test_oversized_crash_script_stays_inapplicable(self):
        """The subsumed crashes > f check survives the timed-crash lift."""
        rows = run_campaign(
            CampaignSpec(
                name="crash-bound",
                algorithms=("paxos",),
                models=((3, 0, 1),),
                engines=("lockstep", "timed"),
                faults=(FaultSpec(crashes=2),),
            )
        )
        assert {row["status"] for row in rows} == {"inapplicable"}
        assert all("crashes 2 > f = 1" in row["error"] for row in rows)


class TestRows:
    def test_ok_rows_carry_properties_and_metrics(self):
        rows = run_campaign(mixed_spec())
        ok = [row for row in rows if row["status"] == "ok"]
        assert ok
        for row in ok:
            assert row["agreement"] is True
            assert row["termination"] is True
            assert row["validity"] is True
            assert row["messages_sent"] > 0
            if row["engine"] == "timed":
                assert row["time_to_decision"] > 0
            else:
                assert row["phases"] >= 1
                assert row["time_to_decision"] is None

    def test_rows_sorted_by_run_id(self):
        rows = run_campaign(mixed_spec(), workers=3)
        assert [row["run_id"] for row in rows] == list(range(len(rows)))

    def test_execute_run_never_raises(self):
        spec = mixed_spec(algorithms=("no-such-algorithm",))
        for run in spec.expand():
            row = execute_run(run)
            assert row["status"] == "error"

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_campaign(mixed_spec(), workers=0)


def test_progress_callback_sees_every_run():
    spec = mixed_spec(engines=("lockstep",), repetitions=1)
    seen = []
    run_campaign(spec, progress=lambda done, total: seen.append((done, total)))
    total = spec.total_runs
    assert seen == [(i, total) for i in range(1, total + 1)]
