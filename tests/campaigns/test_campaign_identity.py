"""Campaign rows are byte-identical across every fast-path configuration.

The PR-5 optimizations (heap-free timed delivery, batched latency sampling,
policy-reported drops, chunked dispatch, worker-side memos) all promise the
same thing: not one byte of any result row changes.  This suite pins that
down end to end on the ``gauntlet`` campaign — every registered scenario ×
every algorithm class × both engines — by diffing the canonical JSONL
against a baseline produced with ``REPRO_SLOW_SCHEDULER=1`` (the legacy
event-heap delivery), at workers ∈ {1, 4} and chunk ∈ {1, 8}.
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS, run_campaign

GAUNTLET = BUILTIN_CAMPAIGNS["gauntlet"]


def canonical(rows):
    """One deterministic string per row list (already run_id-sorted)."""
    return [json.dumps(row, sort_keys=True) for row in rows]


@pytest.fixture(scope="module")
def slow_baseline():
    """The gauntlet under the legacy heap scheduler, inline execution.

    Environment mutation is module-scoped by hand (monkeypatch is
    function-scoped): schedulers read REPRO_SLOW_SCHEDULER at construction,
    which happens per run inside execute_run, so setting it around the
    campaign is enough with workers=1.
    """
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=1)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    return canonical(rows)


def test_gauntlet_has_no_error_rows(slow_baseline):
    for line in slow_baseline:
        assert '"status": "error"' not in line


def test_fast_path_identical_inline(slow_baseline):
    assert canonical(run_campaign(GAUNTLET, workers=1)) == slow_baseline


@pytest.mark.parametrize("workers,chunk", [(4, 1), (4, 8)])
def test_fast_path_identical_parallel(slow_baseline, workers, chunk):
    rows = run_campaign(GAUNTLET, workers=workers, chunk=chunk)
    assert canonical(rows) == slow_baseline


def test_slow_scheduler_survives_worker_processes(slow_baseline):
    """Pool workers inherit the escape hatch: slow parallel == slow inline."""
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=4, chunk=8)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    assert canonical(rows) == slow_baseline
