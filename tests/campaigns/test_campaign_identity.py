"""Campaign rows are byte-identical across every fast-path configuration.

The PR-5 optimizations (heap-free timed delivery, batched latency sampling,
policy-reported drops, chunked dispatch, worker-side memos) and the PR-7
batch backend (replicated / columnar / scalar execution tiers) all promise
the same thing: not one byte of any result row changes.  This suite pins
that down end to end on the ``gauntlet`` campaign — every registered
scenario × every algorithm class × both engines — by diffing the canonical
JSONL against a baseline produced with ``REPRO_SLOW_SCHEDULER=1`` (the
legacy event-heap delivery), at workers ∈ {1, 4} and chunk ∈ {1, 8},
including the batch backend with and without numpy and a resume that
switches backends mid-campaign.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS, run_campaign

GAUNTLET = BUILTIN_CAMPAIGNS["gauntlet"]


def canonical(rows):
    """One deterministic string per row list (already run_id-sorted).

    Underscore-prefixed keys are volatile diagnostics (``_elapsed_ms``,
    ``_pid``, ``_backend``) that the result store strips before
    serialization — strip them here too, matching ``row_to_json``.
    """
    return [
        json.dumps(
            {k: v for k, v in row.items() if not k.startswith("_")},
            sort_keys=True,
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def slow_baseline():
    """The gauntlet under the legacy heap scheduler, inline execution.

    Environment mutation is module-scoped by hand (monkeypatch is
    function-scoped): schedulers read REPRO_SLOW_SCHEDULER at construction,
    which happens per run inside execute_run, so setting it around the
    campaign is enough with workers=1.
    """
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=1)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    return canonical(rows)


def test_gauntlet_has_no_error_rows(slow_baseline):
    for line in slow_baseline:
        assert '"status": "error"' not in line


def test_fast_path_identical_inline(slow_baseline):
    assert canonical(run_campaign(GAUNTLET, workers=1)) == slow_baseline


@pytest.mark.parametrize("workers,chunk", [(4, 1), (4, 8)])
def test_fast_path_identical_parallel(slow_baseline, workers, chunk):
    rows = run_campaign(GAUNTLET, workers=workers, chunk=chunk)
    assert canonical(rows) == slow_baseline


def test_slow_scheduler_survives_worker_processes(slow_baseline):
    """Pool workers inherit the escape hatch: slow parallel == slow inline."""
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=4, chunk=8)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    assert canonical(rows) == slow_baseline


@pytest.mark.parametrize(
    "workers,chunk", [(1, 1), (1, 8), (4, 1), (4, 8)]
)
def test_batch_backend_identical(slow_baseline, workers, chunk):
    """The batch kernel reproduces the heap oracle at every dispatch shape."""
    rows = run_campaign(
        GAUNTLET, workers=workers, chunk=chunk, backend="batch"
    )
    assert canonical(rows) == slow_baseline


def test_batch_backend_identical_without_numpy(slow_baseline):
    """The pure-python block fallback is byte-identical too."""
    import os

    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=4, chunk=8, backend="batch")
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    assert canonical(rows) == slow_baseline


def test_batch_backend_identical_with_repetitions(slow_baseline):
    """Multi-repetition cells (the replicate tier's raison d'être) agree."""
    spec = dataclasses.replace(GAUNTLET, repetitions=2)
    scalar = run_campaign(spec, workers=1, backend="scalar")
    batch = run_campaign(spec, workers=4, chunk=8, backend="batch")
    assert canonical(batch) == canonical(scalar)


def test_resume_with_backend_switched(slow_baseline):
    """A campaign recorded under one backend completes under another.

    Rows 0..39 play the part of a checkpoint written by a scalar run; the
    batch backend finishes the remainder and the merged file matches the
    single-shot baseline byte for byte.
    """
    from repro.campaigns import iter_campaign

    head = slow_baseline[:40]
    skip = {json.loads(line)["run_id"] for line in head}
    tail = list(
        iter_campaign(GAUNTLET, workers=1, skip_run_ids=skip, backend="batch")
    )
    merged = head + canonical(tail)
    merged.sort(key=lambda line: json.loads(line)["run_id"])
    assert merged == slow_baseline
