"""Campaign rows are byte-identical across every fast-path configuration.

The PR-5 optimizations (heap-free timed delivery, batched latency sampling,
policy-reported drops, chunked dispatch, worker-side memos) and the PR-7
batch backend (replicated / columnar / scalar execution tiers) all promise
the same thing: not one byte of any result row changes.  This suite pins
that down end to end on the ``gauntlet`` campaign — every registered
scenario × every algorithm class × both engines — by diffing the canonical
JSONL against a baseline produced with ``REPRO_SLOW_SCHEDULER=1`` (the
legacy event-heap delivery), at workers ∈ {1, 4} and chunk ∈ {1, 8},
including the batch backend with and without numpy and a resume that
switches backends mid-campaign.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS, run_campaign

GAUNTLET = BUILTIN_CAMPAIGNS["gauntlet"]


def canonical(rows):
    """One deterministic string per row list (already run_id-sorted).

    Underscore-prefixed keys are volatile diagnostics (``_elapsed_ms``,
    ``_pid``, ``_backend``) that the result store strips before
    serialization — strip them here too, matching ``row_to_json``.
    """
    return [
        json.dumps(
            {k: v for k, v in row.items() if not k.startswith("_")},
            sort_keys=True,
        )
        for row in rows
    ]


@pytest.fixture(scope="module")
def slow_baseline():
    """The gauntlet under the legacy heap scheduler, inline execution.

    Environment mutation is module-scoped by hand (monkeypatch is
    function-scoped): schedulers read REPRO_SLOW_SCHEDULER at construction,
    which happens per run inside execute_run, so setting it around the
    campaign is enough with workers=1.
    """
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=1)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    return canonical(rows)


def test_gauntlet_has_no_error_rows(slow_baseline):
    for line in slow_baseline:
        assert '"status": "error"' not in line


def test_fast_path_identical_inline(slow_baseline):
    assert canonical(run_campaign(GAUNTLET, workers=1)) == slow_baseline


@pytest.mark.parametrize("workers,chunk", [(4, 1), (4, 8)])
def test_fast_path_identical_parallel(slow_baseline, workers, chunk):
    rows = run_campaign(GAUNTLET, workers=workers, chunk=chunk)
    assert canonical(rows) == slow_baseline


def test_slow_scheduler_survives_worker_processes(slow_baseline):
    """Pool workers inherit the escape hatch: slow parallel == slow inline."""
    import os

    os.environ["REPRO_SLOW_SCHEDULER"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=4, chunk=8)
    finally:
        del os.environ["REPRO_SLOW_SCHEDULER"]
    assert canonical(rows) == slow_baseline


@pytest.mark.parametrize(
    "workers,chunk", [(1, 1), (1, 8), (4, 1), (4, 8)]
)
def test_batch_backend_identical(slow_baseline, workers, chunk):
    """The batch kernel reproduces the heap oracle at every dispatch shape."""
    rows = run_campaign(
        GAUNTLET, workers=workers, chunk=chunk, backend="batch"
    )
    assert canonical(rows) == slow_baseline


def test_batch_backend_identical_without_numpy(slow_baseline):
    """The pure-python block fallback is byte-identical too."""
    import os

    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        rows = run_campaign(GAUNTLET, workers=4, chunk=8, backend="batch")
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    assert canonical(rows) == slow_baseline


def test_batch_backend_identical_with_repetitions(slow_baseline):
    """Multi-repetition cells (the replicate tier's raison d'être) agree."""
    spec = dataclasses.replace(GAUNTLET, repetitions=2)
    scalar = run_campaign(spec, workers=1, backend="scalar")
    batch = run_campaign(spec, workers=4, chunk=8, backend="batch")
    assert canonical(batch) == canonical(scalar)


def test_resume_with_backend_switched(slow_baseline):
    """A campaign recorded under one backend completes under another.

    Rows 0..39 play the part of a checkpoint written by a scalar run; the
    batch backend finishes the remainder and the merged file matches the
    single-shot baseline byte for byte.
    """
    from repro.campaigns import iter_campaign

    head = slow_baseline[:40]
    skip = {json.loads(line)["run_id"] for line in head}
    tail = list(
        iter_campaign(GAUNTLET, workers=1, skip_run_ids=skip, backend="batch")
    )
    merged = head + canonical(tail)
    merged.sort(key=lambda line: json.loads(line)["run_id"])
    assert merged == slow_baseline


def test_gauntlet_exercises_columnar_state_tier():
    """The tier coverage the batch identity tests above rely on is real.

    The byte-identity claims are only as strong as the tiers the gauntlet
    actually dispatches through: if planner eligibility ever regressed and
    every seed-dependent timed cell silently demoted to columnar/scalar,
    the suite would pass vacuously.  Pin the gauntlet to keep cells on the
    columnar-state tier (and on every other tier).
    """
    from repro.engine.batch import (
        MODE_COLUMNAR,
        MODE_COLUMNAR_STATE,
        MODE_REPLICATE,
        MODE_SCALAR,
        plan_for_run,
    )

    modes = {plan_for_run(run).mode for run in GAUNTLET.iter_runs()}
    assert modes == {
        MODE_REPLICATE, MODE_COLUMNAR_STATE, MODE_COLUMNAR, MODE_SCALAR
    }


@pytest.fixture
def byz_lossy_scenario():
    """A synthetic Byzantine + lossy scenario, registered for one test.

    No builtin scenario combines Byzantine strategies with seed-dependent
    timed delivery, so without this cell the columnar-state tier's
    Byzantine payload templates would only ever face reliable delivery.
    Registered/unregistered by hand: the registry is process-global and
    must not leak into other tests (inline workers only — a pool worker
    process would never see this registration).
    """
    from repro.scenarios import CommSpec, ScenarioSpec, register_scenario
    from repro.scenarios.registry import SCENARIO_REGISTRY

    spec = ScenarioSpec(
        name="byz_lossy_identity",
        byzantine=("equivocator", "high-ts-liar"),
        comm=CommSpec(kind="lossy", drop_prob=0.3),
        max_phases=15,
    )
    register_scenario(spec)
    try:
        yield spec
    finally:
        del SCENARIO_REGISTRY[spec.name]


def test_forced_columnar_state_cell_matches_scalar_oracle(byz_lossy_scenario):
    """Byzantine payloads under lossy masks: forced tier vs the oracle.

    Every run of the synthetic cell must plan columnar-state (not merely
    happen to), and the batch rows must match the scalar oracle byte for
    byte — on the numpy array program and on the pure-python block
    fallback alike.
    """
    import os

    from repro.campaigns import CampaignSpec
    from repro.campaigns.runner import execute_chunk
    from repro.engine.batch import MODE_COLUMNAR_STATE, plan_for_run

    spec = CampaignSpec(
        name="byz-lossy-forced",
        algorithms=("class-2", "class-3"),
        models=((11, 2, 1),),
        engines=("timed",),
        scenarios=(byz_lossy_scenario.name,),
        repetitions=8,
        seed=13,
    )
    runs = tuple(spec.iter_runs())
    assert all(
        plan_for_run(run).mode == MODE_COLUMNAR_STATE for run in runs
    )
    scalar = canonical(execute_chunk(runs, False, "scalar"))
    assert all('"status": "ok"' in line for line in scalar)
    assert canonical(execute_chunk(runs, False, "batch")) == scalar
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        fallback = canonical(execute_chunk(runs, False, "batch"))
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    assert fallback == scalar
