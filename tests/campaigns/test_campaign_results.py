"""Result store round-trips, aggregation arithmetic, CLI integration."""

import json

import pytest

from repro.campaigns.aggregate import (
    CellSummary,
    SummaryFold,
    format_report,
    percentile,
    summarize,
)
from repro.campaigns.presets import BUILTIN_CAMPAIGNS
from repro.campaigns.results import (
    ResultStore,
    iter_rows,
    read_rows,
    rows_to_jsonl,
    write_rows,
)
from repro.cli import main


def make_row(**overrides):
    row = {
        "campaign": "unit", "run_id": 0, "algorithm": "pbft",
        "n": 4, "b": 1, "f": 0, "engine": "timed", "fault": "fault-free",
        "network": "uniform[0.5,2] gst=0 δ=2 Δ=2.5", "rep": 0, "seed": 1,
        "status": "ok", "agreement": True, "validity": True,
        "unanimity": True, "termination": True, "decided": 4, "rounds": 3,
        "phases": None, "time_to_decision": 7.5, "messages_sent": 48,
        "messages_delivered": 48, "messages_dropped": 0, "error": None,
    }
    row.update(overrides)
    return row


class TestStore:
    def test_write_read_round_trip(self, tmp_path):
        rows = [make_row(run_id=i, seed=i) for i in range(5)]
        path = tmp_path / "out" / "results.jsonl"
        write_rows(path, rows)
        assert read_rows(path) == rows

    def test_canonical_bytes_are_stable(self, tmp_path):
        rows = [make_row(run_id=i) for i in range(3)]
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_rows(first, rows)
        write_rows(second, [dict(reversed(list(row.items()))) for row in rows])
        assert first.read_bytes() == second.read_bytes()

    def test_append_matches_write(self, tmp_path):
        rows = [make_row(run_id=i) for i in range(4)]
        store = ResultStore(tmp_path / "append.jsonl")
        for row in rows:
            store.append(row)
        assert store.path.read_text() == rows_to_jsonl(rows)
        assert store.load() == rows

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok":1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_rows(path)

    def test_open_append_streams_through_one_handle(self, tmp_path):
        rows = [make_row(run_id=i) for i in range(6)]
        store = ResultStore(tmp_path / "stream" / "sink.jsonl")
        with store.open_append() as sink:
            for row in rows:
                sink.append(row)
        assert store.path.read_text() == rows_to_jsonl(rows)
        assert store.recorded_run_ids() == set(range(6))

    def test_recorded_run_ids_of_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "nope.jsonl").recorded_run_ids() == set()

    def test_iter_rows_is_lazy_and_matches_read(self, tmp_path):
        rows = [make_row(run_id=i) for i in range(3)]
        path = tmp_path / "lazy.jsonl"
        write_rows(path, rows)
        stream = iter_rows(path)
        assert next(stream) == rows[0]
        assert list(stream) == rows[1:]


class TestAggregate:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5
        assert percentile([], 0.5) is None
        with pytest.raises(ValueError):
            percentile(values, 1.5)

    def test_summarize_groups_and_stats(self):
        rows = [
            make_row(run_id=0, time_to_decision=5.0, messages_sent=40),
            make_row(run_id=1, time_to_decision=10.0, messages_sent=60),
            make_row(run_id=2, algorithm="mqb", status="error",
                     agreement=None, time_to_decision=None, error="boom"),
        ]
        summaries = summarize(rows)
        assert len(summaries) == 2
        cells = {summary.key[0]: summary for summary in summaries}
        pbft = cells["pbft"]
        assert (pbft.runs, pbft.ok, pbft.errors) == (2, 2, 0)
        assert pbft.mean_latency == 7.5
        assert pbft.p50_latency == 7.5
        assert pbft.mean_messages == 50.0
        mqb = cells["mqb"]
        assert (mqb.runs, mqb.ok, mqb.errors) == (1, 0, 1)
        assert mqb.mean_latency is None

    def test_violations_counted(self):
        rows = [
            make_row(run_id=0, agreement=False),
            make_row(run_id=1, termination=False),
            make_row(run_id=2, validity=False),
            make_row(run_id=3, unanimity=False),
        ]
        (summary,) = summarize(rows)
        assert summary.agreement_violations == 1
        assert summary.validity_violations == 1
        assert summary.unanimity_violations == 1
        assert summary.safety_violations == 3
        assert summary.termination_failures == 1

    def test_format_report_renders(self):
        report = format_report(summarize([make_row()]))
        assert "ttd-p99" in report and "pbft" in report

    def test_inadmissible_and_inapplicable_are_distinct(self):
        """A resilience-frontier rejection and an unhostable scenario are
        different signals — the report must not fold them together."""
        rows = [
            make_row(run_id=0),
            make_row(run_id=1, status="inadmissible", agreement=None),
            make_row(run_id=2, status="inadmissible", agreement=None),
            make_row(run_id=3, status="inapplicable", agreement=None),
        ]
        (summary,) = summarize(rows)
        assert summary.inadmissible == 2
        assert summary.inapplicable == 1
        header = format_report([summary]).splitlines()[0]
        assert "inadm" in header and "inappl" in header

    def test_summarize_accepts_a_generator(self):
        rows = [make_row(run_id=i, time_to_decision=float(i)) for i in range(4)]
        assert summarize(iter(rows)) == summarize(rows)

    def test_summary_fold_is_incremental(self):
        rows = [
            make_row(run_id=0, time_to_decision=5.0),
            make_row(run_id=1, status="error", agreement=None,
                     time_to_decision=None, error="boom"),
            make_row(run_id=2, time_to_decision=10.0),
        ]
        fold = SummaryFold()
        for row in rows:
            fold.add(row)
        assert fold.summaries() == summarize(rows)
        # Reading summaries mid-stream must not corrupt the fold.
        partial_fold = SummaryFold()
        partial_fold.add(rows[0])
        partial_fold.summaries()
        partial_fold.add(rows[1])
        partial_fold.add(rows[2])
        assert partial_fold.summaries() == summarize(rows)

    def test_custom_group_keys(self):
        rows = [make_row(run_id=0), make_row(run_id=1, engine="lockstep")]
        summaries = summarize(rows, ("engine",))
        assert [summary.key for summary in summaries] == [
            ("lockstep",), ("timed",),
        ]
        assert isinstance(summaries[0], CellSummary)


class TestCli:
    def spec_file(self, tmp_path):
        spec = {
            "name": "cli-unit",
            "algorithms": ["pbft"],
            "models": [[4, 1, 0]],
            "faults": [{}, {"byzantine": "equivocator"}],
            "repetitions": 2,
            "seed": 5,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_campaign_run_and_report(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        out = tmp_path / "results.jsonl"
        code = main(
            ["campaign", "run", str(spec_path), "--out", str(out), "--quiet"]
        )
        assert code == 0
        assert len(read_rows(out)) == 4
        capsys.readouterr()

        assert main(["campaign", "report", str(out)]) == 0
        report = capsys.readouterr().out
        assert "pbft" in report and "safety-viol" in report

    def test_campaign_run_workers_deterministic(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        one = tmp_path / "w1.jsonl"
        four = tmp_path / "w4.jsonl"
        assert main(["campaign", "run", str(spec_path), "--out", str(one),
                     "--quiet", "--no-report"]) == 0
        assert main(["campaign", "run", str(spec_path), "--out", str(four),
                     "--quiet", "--no-report", "--workers", "4"]) == 0
        capsys.readouterr()
        assert one.read_bytes() == four.read_bytes()

    def test_campaign_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_CAMPAIGNS:
            assert name in out

    def test_campaign_run_builtin(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["campaign", "run", "fig3-flv-class3", "--quiet"]) == 0
        assert (tmp_path / "fig3-flv-class3.results.jsonl").exists()
        capsys.readouterr()

    def test_campaign_run_unknown_spec(self, tmp_path, capsys):
        assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 2
        assert "no such campaign" in capsys.readouterr().err

    def test_campaign_report_missing_file(self, tmp_path, capsys):
        assert main(["campaign", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_campaign_report_unknown_group_key(self, tmp_path, capsys):
        out = tmp_path / "rows.jsonl"
        write_rows(out, [make_row()])
        code = main(["campaign", "report", str(out), "--group-by", "engnie"])
        assert code == 2
        assert "unknown --group-by field(s) engnie" in capsys.readouterr().err

    def test_campaign_run_bad_spec_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "algorithms": ["pbft"], "oops": 1}')
        assert main(["campaign", "run", str(path)]) == 2
        assert "cannot load campaign spec" in capsys.readouterr().err

    def test_seed_override_changes_output(self, tmp_path, capsys):
        spec_path = self.spec_file(tmp_path)
        base = tmp_path / "base.jsonl"
        moved = tmp_path / "moved.jsonl"
        main(["campaign", "run", str(spec_path), "--out", str(base),
              "--quiet", "--no-report"])
        main(["campaign", "run", str(spec_path), "--out", str(moved),
              "--quiet", "--no-report", "--seed", "6"])
        capsys.readouterr()
        seeds = lambda path: [row["seed"] for row in read_rows(path)]  # noqa: E731
        assert seeds(base) != seeds(moved)


def test_builtin_campaigns_expand():
    for name, spec in BUILTIN_CAMPAIGNS.items():
        runs = spec.expand()
        assert len(runs) == spec.total_runs, name
        assert spec.name == name


def test_grid_demo_meets_acceptance_size():
    assert BUILTIN_CAMPAIGNS["grid-demo"].total_runs >= 100
