"""Campaign spec expansion: grid size, seed derivation, (de)serialization."""

import json

import pytest

from repro.campaigns.spec import (
    CampaignSpec,
    FaultSpec,
    NetworkSpec,
    derive_seed,
    load_spec,
    resolve_algorithm,
)
from repro.core.parameters import ConsensusParameters
from repro.core.types import FaultModel


def small_spec(**overrides):
    kwargs = dict(
        name="unit",
        algorithms=("pbft", "class-2"),
        models=((4, 1, 0), (5, 1, 0)),
        engines=("lockstep", "timed"),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator")),
        networks=(NetworkSpec(),),
        repetitions=3,
        seed=7,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestExpansion:
    def test_cross_product_size(self):
        spec = small_spec()
        runs = spec.expand()
        assert len(runs) == 2 * 2 * 2 * 2 * 1 * 3 == spec.total_runs

    def test_run_ids_sequential(self):
        runs = small_spec().expand()
        assert [run.run_id for run in runs] == list(range(len(runs)))

    def test_all_coordinates_distinct(self):
        runs = small_spec().expand()
        assert len({run.key() for run in runs}) == len(runs)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="algorithms"):
            small_spec(algorithms=())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            small_spec(engines=("warp",))


class TestSeedDerivation:
    def test_expansion_is_deterministic(self):
        spec = small_spec()
        assert spec.expand() == spec.expand()

    def test_seeds_differ_across_runs(self):
        runs = small_spec().expand()
        seeds = {run.seed for run in runs}
        assert len(seeds) == len(runs)

    def test_campaign_seed_changes_every_run_seed(self):
        base = {run.run_id: run.seed for run in small_spec().expand()}
        moved = {run.run_id: run.seed for run in small_spec(seed=8).expand()}
        assert all(base[rid] != moved[rid] for rid in base)

    def test_seed_depends_on_coordinates_not_position(self):
        """Adding a repetition must not disturb existing runs' seeds."""
        narrow = {run.key(): run.seed for run in small_spec().expand()}
        wide = {
            run.key(): run.seed for run in small_spec(repetitions=4).expand()
        }
        for key, seed in narrow.items():
            assert wide[key] == seed

    def test_derive_seed_stable(self):
        assert derive_seed(7, "a|b") == derive_seed(7, "a|b")
        assert derive_seed(7, "a|b") != derive_seed(8, "a|b")
        assert derive_seed(7, "a|b") != derive_seed(7, "a|c")


class TestSerialization:
    def test_mapping_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_mapping(spec.to_mapping()) == spec

    def test_load_json(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec.to_mapping()))
        assert load_spec(path) == spec

    def test_load_toml(self, tmp_path):
        path = tmp_path / "campaign.toml"
        path.write_text(
            'name = "toml-campaign"\n'
            'algorithms = ["pbft"]\n'
            "models = [[4, 1, 0]]\n"
            "repetitions = 2\n"
            "[[faults]]\n"
            'byzantine = "silent"\n'
        )
        spec = load_spec(path)
        assert spec.name == "toml-campaign"
        assert spec.faults == (FaultSpec(byzantine="silent"),)
        assert spec.total_runs == 2

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign keys"):
            CampaignSpec.from_mapping(
                {"name": "x", "algorithms": ["pbft"], "models": [[4, 1, 0]],
                 "typo": 1}
            )

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "campaign.yaml"
        path.write_text("name: x\n")
        with pytest.raises(ValueError, match="unsupported spec extension"):
            load_spec(path)


class TestResolveAlgorithm:
    def test_builder_name(self):
        parameters, _config = resolve_algorithm("pbft", FaultModel(4, 1, 0))
        assert isinstance(parameters, ConsensusParameters)
        assert parameters.model.n == 4

    def test_class_name(self):
        parameters, _config = resolve_algorithm("class-1", FaultModel(6, 1, 0))
        assert parameters.model.b == 1

    def test_below_bound_raises_value_error(self):
        with pytest.raises(ValueError):
            resolve_algorithm("class-1", FaultModel(4, 1, 0))

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            resolve_algorithm("nope", FaultModel(4, 1, 0))


class TestFaultSpec:
    def test_describe(self):
        assert FaultSpec().describe() == "fault-free"
        assert FaultSpec(byzantine="silent").describe() == "byz:silent"
        assert FaultSpec(crashes=-1).describe() == "crash:f@1"
        assert (
            FaultSpec(byzantine="noise", crashes=2, crash_round=3,
                      clean=False).describe()
            == "byz:noise+crash!:2@3"
        )

    def test_crash_count(self):
        model = FaultModel(5, 0, 2)
        assert FaultSpec(crashes=-1).crash_count(model) == 2
        assert FaultSpec(crashes=1).crash_count(model) == 1


class TestNetworkSpec:
    def test_describe_distinguishes_every_field(self):
        """Aliased describe() strings would alias derived seeds and cells."""
        variants = [
            NetworkSpec(),
            NetworkSpec(kind="fixed"),
            NetworkSpec(low=0.6),
            NetworkSpec(high=2.5),
            NetworkSpec(gst=1.0),
            NetworkSpec(delta=3.0),
            NetworkSpec(pre_gst_delay_prob=0.9),
            NetworkSpec(chaos_factor=10.0),
            NetworkSpec(round_duration=3.0),
        ]
        described = {network.describe() for network in variants}
        assert len(described) == len(variants)

    def test_sweep_over_delay_prob_gets_distinct_seeds(self):
        spec = small_spec(
            engines=("timed",),
            networks=(
                NetworkSpec(pre_gst_delay_prob=0.1),
                NetworkSpec(pre_gst_delay_prob=0.9),
            ),
        )
        runs = spec.expand()
        assert len({run.seed for run in runs}) == len(runs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown latency kind"):
            NetworkSpec(kind="warp")
