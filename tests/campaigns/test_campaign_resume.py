"""Streaming execution and interrupt/resume: the crash-safe campaign path.

The contract under test: kill a campaign anywhere mid-grid, resume it (at
any worker count), and the finalized JSONL is byte-identical to a single
uninterrupted run — plus the streaming properties that make that cheap
(lazy expansion, bounded dispatch, single-pass aggregation) and the
``sent == delivered + dropped`` accounting invariant on both engines.
"""

import itertools
import json

import pytest

from repro.campaigns.results import (
    checkpoint_path,
    finalize_checkpoint,
    read_rows,
    rows_to_jsonl,
    scan_checkpoint,
    validate_resume,
)
from repro.campaigns.runner import iter_campaign, run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.cli import main

SPEC = {
    "name": "resume-unit",
    "algorithms": ["pbft", "class-2"],
    "models": [[4, 1, 0]],
    "engines": ["lockstep", "timed"],
    "scenarios": ["fault-free", "worst_case"],
    "repetitions": 2,
    "seed": 11,
    "max_phases": 12,
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


def run_cli(spec_path, out, *extra):
    return main(
        [
            "campaign", "run", str(spec_path),
            "--out", str(out), "--quiet", "--no-report", *extra,
        ]
    )


@pytest.fixture()
def reference(spec_path, tmp_path, capsys):
    out = tmp_path / "reference.jsonl"
    assert run_cli(spec_path, out) == 0
    capsys.readouterr()
    return out.read_bytes()


class TestInterruptResume:
    @pytest.mark.parametrize("workers", ["1", "2", "3"])
    def test_resumed_file_is_byte_identical(
        self, spec_path, tmp_path, capsys, reference, workers
    ):
        out = tmp_path / f"resumed-{workers}.jsonl"
        code = run_cli(
            spec_path, out, "--workers", workers, "--stop-after", "5"
        )
        assert code == 3
        assert not out.exists()
        assert checkpoint_path(out).exists()

        assert run_cli(spec_path, out, "--workers", workers, "--resume") == 0
        capsys.readouterr()
        assert out.read_bytes() == reference
        assert not checkpoint_path(out).exists()

    def test_resume_after_torn_final_line(
        self, spec_path, tmp_path, capsys, reference
    ):
        """A crash mid-append leaves a torn line; resume truncates and
        re-executes that run."""
        out = tmp_path / "torn.jsonl"
        assert run_cli(spec_path, out, "--stop-after", "4") == 3
        checkpoint = checkpoint_path(out)
        with open(checkpoint, "a", encoding="utf-8") as handle:
            handle.write('{"run_id":7,"status":"ok","truncat')
        assert run_cli(spec_path, out, "--resume") == 0
        capsys.readouterr()
        assert out.read_bytes() == reference

    def test_resume_can_change_worker_count(
        self, spec_path, tmp_path, capsys, reference
    ):
        out = tmp_path / "switch.jsonl"
        assert run_cli(spec_path, out, "--workers", "2",
                       "--stop-after", "6") == 3
        assert run_cli(spec_path, out, "--workers", "3", "--resume") == 0
        capsys.readouterr()
        assert out.read_bytes() == reference

    def test_resume_without_checkpoint_fails(self, spec_path, tmp_path, capsys):
        out = tmp_path / "missing.jsonl"
        assert run_cli(spec_path, out, "--resume") == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_resume_rejects_foreign_checkpoint(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "foreign.jsonl"
        checkpoint_path(out).write_text(
            '{"campaign":"someone-else","run_id":0}\n'
        )
        assert run_cli(spec_path, out, "--resume") == 2
        assert "belongs to campaign" in capsys.readouterr().err

    def test_resume_rejects_seed_mismatch(self, spec_path, tmp_path, capsys):
        """Resuming under a different campaign seed would finalize a
        mixed-seed file that matches no single-shot run."""
        out = tmp_path / "reseeded.jsonl"
        assert run_cli(spec_path, out, "--stop-after", "3") == 3
        capsys.readouterr()
        assert run_cli(spec_path, out, "--resume", "--seed", "99") == 2
        assert "seed mismatch" in capsys.readouterr().err
        # The checkpoint must survive the refused resume untouched.
        assert checkpoint_path(out).exists()
        assert run_cli(spec_path, out, "--resume") == 0

    def test_resume_rejects_shrunken_grid(self, spec_path, tmp_path, capsys):
        """Recorded run_ids beyond the edited grid's size are a spec change,
        not a resumable checkpoint."""
        out = tmp_path / "reshaped.jsonl"
        assert run_cli(spec_path, out, "--stop-after", "12") == 3
        capsys.readouterr()
        spec_path.write_text(json.dumps({**SPEC, "repetitions": 1}))
        assert run_cli(spec_path, out, "--resume") == 2
        assert "spec changed" in capsys.readouterr().err

    def test_resume_rejects_reordered_axes(self, spec_path, tmp_path, capsys):
        """Same grid size, different coordinates: the recorded rows' derived
        seeds no longer match their run_ids."""
        out = tmp_path / "reordered.jsonl"
        assert run_cli(spec_path, out, "--stop-after", "3") == 3
        capsys.readouterr()
        spec_path.write_text(
            json.dumps({**SPEC, "scenarios": ["worst_case", "fault-free"]})
        )
        assert run_cli(spec_path, out, "--resume") == 2
        assert "seed mismatch" in capsys.readouterr().err

    def test_stale_checkpoint_without_resume_fails(
        self, spec_path, tmp_path, capsys
    ):
        out = tmp_path / "stale.jsonl"
        assert run_cli(spec_path, out, "--stop-after", "2") == 3
        capsys.readouterr()
        assert run_cli(spec_path, out) == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_abandoned_iterator_rows_complete_via_skip(self):
        """The API-level contract the CLI is built on: rows already yielded
        plus a resumed stream over their run_ids reproduce the full grid."""
        spec = CampaignSpec.from_mapping(SPEC)
        stream = iter_campaign(spec, workers=2)
        first = list(itertools.islice(stream, 5))
        stream.close()  # the "kill": in-flight work is discarded
        done = {row["run_id"] for row in first}
        rest = list(iter_campaign(spec, skip_run_ids=done))
        merged = sorted(first + rest, key=lambda row: row["run_id"])
        assert rows_to_jsonl(merged) == rows_to_jsonl(run_campaign(spec))


class TestCheckpointScan:
    def test_scan_recovers_ids_and_offset(self, tmp_path):
        path = tmp_path / "ckpt.partial"
        intact = '{"run_id":0}\n{"run_id":4}\n'
        path.write_text(intact + '{"run_id":9,"to')
        ids, offset = scan_checkpoint(path)
        assert ids == {0, 4}
        assert offset == len(intact.encode())

    def test_scan_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "bad.partial"
        path.write_text('{"run_id":0}\nnot json\n{"run_id":2}\n')
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            scan_checkpoint(path)

    def test_scan_rejects_rows_without_run_id(self, tmp_path):
        path = tmp_path / "alien.partial"
        path.write_text('{"status":"ok"}\n')
        with pytest.raises(ValueError, match="run_id"):
            scan_checkpoint(path)

    def test_validate_resume_is_the_shared_api_guard(self, tmp_path):
        """API callers get the same protection as the CLI: valid checkpoints
        return their run_ids, foreign/reshaped/reseeded ones raise."""
        spec = CampaignSpec.from_mapping(SPEC)
        path = tmp_path / "api.partial"
        rows = list(itertools.islice(iter_campaign(spec), 4))
        path.write_text(rows_to_jsonl(rows))
        run_ids, intact = validate_resume(spec, path)
        assert run_ids == {0, 1, 2, 3}
        assert intact == path.stat().st_size

        path.write_text(rows_to_jsonl([{**rows[0], "campaign": "other"}]))
        with pytest.raises(ValueError, match="belongs to campaign"):
            validate_resume(spec, path)

        path.write_text(rows_to_jsonl([{**rows[0], "run_id": 10_000}]))
        with pytest.raises(ValueError, match="spec changed"):
            validate_resume(spec, path)

        path.write_text(rows_to_jsonl([{**rows[0], "seed": rows[0]["seed"] ^ 1}]))
        with pytest.raises(ValueError, match="seed mismatch"):
            validate_resume(spec, path)

    def test_finalize_sorts_and_dedupes(self, tmp_path):
        checkpoint = tmp_path / "out.jsonl.partial"
        rows = [
            {"run_id": 2, "x": "late"},
            {"run_id": 0, "x": "first"},
            {"run_id": 2, "x": "duplicate"},
            {"run_id": 1, "x": "mid"},
        ]
        checkpoint.write_text(rows_to_jsonl(rows))
        out = tmp_path / "out.jsonl"
        finalize_checkpoint(checkpoint, out)
        assert [row["run_id"] for row in read_rows(out)] == [0, 1, 2]
        assert read_rows(out)[2]["x"] == "late"  # first occurrence wins
        assert not checkpoint.exists()


class TestStreamingProperties:
    def test_expansion_is_lazy(self):
        """First row arrives without materializing a huge grid."""
        spec = CampaignSpec.from_mapping(
            {**SPEC, "scenarios": ["fault-free"], "repetitions": 1_000_000}
        )
        stream = iter_campaign(spec)
        row = next(stream)
        stream.close()
        assert row["run_id"] == 0
        assert row["status"] == "ok"

    def test_iter_runs_matches_expand(self):
        spec = CampaignSpec.from_mapping(SPEC)
        assert list(spec.iter_runs()) == spec.expand()

    def test_progress_counts_skipped_runs_as_completed(self):
        spec = CampaignSpec.from_mapping(SPEC)
        total = spec.total_runs
        skip = {0, 1, 2}
        seen = []
        list(
            iter_campaign(
                spec,
                skip_run_ids=skip,
                progress=lambda done, _total: seen.append((done, _total)),
            )
        )
        assert seen == [(i, total) for i in range(len(skip) + 1, total + 1)]

    def test_window_must_be_positive(self):
        spec = CampaignSpec.from_mapping(SPEC)
        with pytest.raises(ValueError, match="window"):
            list(iter_campaign(spec, workers=2, window=0))


class TestAccountingInvariant:
    def test_sent_equals_delivered_plus_dropped_on_both_engines(self):
        """Partitions (timed filter) and withholding policies (lockstep)
        must both balance the message ledger."""
        spec = CampaignSpec(
            name="ledger",
            algorithms=("class-3",),
            models=((4, 1, 0),),
            engines=("lockstep", "timed"),
            scenarios=("fault-free", "worst_case", "partition_heal",
                       "lossy_channel"),
            repetitions=2,
            seed=3,
        )
        rows = run_campaign(spec)
        ok = [row for row in rows if row["status"] == "ok"]
        assert ok
        engines_with_drops = set()
        for row in ok:
            assert (
                row["messages_sent"]
                == row["messages_delivered"] + row["messages_dropped"]
            ), row["run_id"]
            if row["messages_dropped"] > 0:
                engines_with_drops.add(row["engine"])
        # The adversarial cells must exercise real drops on both branches.
        assert engines_with_drops == {"lockstep", "timed"}
