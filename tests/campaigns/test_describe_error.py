"""Error rows carry a bounded, worker-stable traceback tail."""

from repro.campaigns.runner import (
    TRACEBACK_TAIL_CHARS,
    TRACEBACK_TAIL_LINES,
    _describe_error,
)


def raise_nested(depth):
    if depth == 0:
        raise ValueError("innermost failure")
    raise_nested(depth - 1)


def capture(callable_):
    try:
        callable_()
    except Exception as exc:  # noqa: BLE001 - the exception is the fixture
        return exc
    raise AssertionError("callable did not raise")


class TestDescribeError:
    def test_head_line_leads_the_description(self):
        exc = capture(lambda: raise_nested(1))
        text = _describe_error(exc)
        assert text.splitlines()[0] == "ValueError: innermost failure"

    def test_includes_traceback_frames(self):
        exc = capture(lambda: raise_nested(1))
        text = _describe_error(exc)
        assert "Traceback" in text or "raise_nested" in text
        assert "innermost failure" in text.splitlines()[-1]

    def test_exception_without_traceback_stays_head_only(self):
        exc = ValueError("bare")
        assert _describe_error(exc) == "ValueError: bare"

    def test_deep_stacks_are_truncated_to_the_tail(self):
        exc = capture(lambda: raise_nested(50))
        text = _describe_error(exc)
        head, _, tail = text.partition("\n")
        lines = tail.split("\n")
        # Bounded: the marker line plus at most TRACEBACK_TAIL_LINES.
        assert lines[0] == "  ..."
        assert len(lines) == TRACEBACK_TAIL_LINES + 1
        assert len(tail) <= TRACEBACK_TAIL_CHARS + 3
        # The tail keeps the innermost (most diagnostic) frames.
        assert "innermost failure" in lines[-1]

    def test_description_is_stable_across_call_sites(self):
        # The same failure raised through different outer stacks (inline
        # runner vs pooled chunk executor) must describe identically —
        # __traceback__ starts below the catching frame, not the dispatcher.
        def boom():
            raise_nested(3)

        def indirect():
            return capture(boom)

        first = _describe_error(capture(boom))
        second = _describe_error(indirect())
        assert first == second
