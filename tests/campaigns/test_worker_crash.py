"""Campaign dispatch survives worker-process death.

A SIGKILLed pool worker surfaces as ``BrokenProcessPool``;
:func:`iter_campaign` must salvage the in-flight chunks, rebuild the pool
(bounded retries, then in-process degradation) and finish the campaign
with rows byte-identical to an undisturbed run — crashes cost wall-clock,
never correctness.  The recovery is visible in the events stream
(``worker_crashed`` / ``chunk_retried`` / ``pool_degraded``), which these
tests also pin.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.campaigns import BUILTIN_CAMPAIGNS, iter_campaign, run_campaign

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="worker kill tests need POSIX signals"
)

GRID = BUILTIN_CAMPAIGNS["grid-demo"]


def canonical(rows):
    return sorted(
        json.dumps(
            {k: v for k, v in row.items() if not k.startswith("_")},
            sort_keys=True,
        )
        for row in rows
    )


@pytest.fixture(scope="module")
def undisturbed():
    return canonical(run_campaign(GRID, workers=1))


def _run_with_kills(undisturbed, kills=1, **kwargs):
    """Drive the campaign, SIGKILLing the first worker pid(s) seen."""
    events = []
    rows = []
    remaining = kills
    own = os.getpid()
    for row in iter_campaign(
        GRID,
        workers=3,
        chunk=2,
        timings=True,
        on_event=lambda kind, fields: events.append((kind, dict(fields))),
        **kwargs,
    ):
        rows.append(row)
        pid = row.get("_pid")
        if remaining and isinstance(pid, int) and pid != own:
            try:
                os.kill(pid, signal.SIGKILL)
                remaining -= 1
            except ProcessLookupError:
                pass
    assert remaining == 0, "no worker pid ever surfaced to kill"
    assert canonical(rows) == undisturbed
    return events


def test_killed_worker_campaign_completes_byte_identical(undisturbed):
    events = _run_with_kills(undisturbed, kills=1)
    kinds = [kind for kind, _ in events]
    assert "worker_crashed" in kinds
    assert "chunk_retried" in kinds
    crash = next(fields for kind, fields in events if kind == "worker_crashed")
    assert crash["chunks"] >= 1 and crash["runs"] >= 1
    retry = next(fields for kind, fields in events if kind == "chunk_retried")
    assert retry["attempt"] == 1 and retry["mode"] == "pool"


def test_degraded_inline_mode_after_rebuild_limit(monkeypatch, undisturbed):
    """With no rebuilds allowed, the campaign finishes in-process."""
    monkeypatch.setattr("repro.campaigns.runner.POOL_REBUILD_LIMIT", 0)
    events = _run_with_kills(undisturbed, kills=1)
    kinds = [kind for kind, _ in events]
    assert "worker_crashed" in kinds
    assert "pool_degraded" in kinds
    retries = [fields for kind, fields in events if kind == "chunk_retried"]
    assert retries and all(r["mode"] == "inline" for r in retries)


def test_exhausted_chunk_retries_execute_inline(monkeypatch, undisturbed):
    """A chunk out of pooled retries re-executes in this process."""
    monkeypatch.setattr("repro.campaigns.runner.CHUNK_RETRY_LIMIT", 0)
    events = _run_with_kills(undisturbed, kills=1)
    retries = [fields for kind, fields in events if kind == "chunk_retried"]
    assert retries and all(r["mode"] == "inline" for r in retries)
