"""Chunked dispatch and worker-side memos of the campaign runner."""

from __future__ import annotations

import pytest

from repro.campaigns.runner import (
    MAX_CHUNK,
    _auto_chunk,
    _resolve_algorithm_memo,
    execute_chunk,
    iter_campaign,
)
from repro.campaigns.spec import CampaignSpec
from repro.core.types import FaultModel


def small_spec(**overrides):
    kwargs = dict(
        name="chunk-test",
        algorithms=("one-third-rule",),
        models=((4, 0, 1), (5, 0, 1)),
        engines=("lockstep", "timed"),
        repetitions=2,
        max_phases=8,
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def test_auto_chunk_scales_with_grid():
    assert _auto_chunk(10, 4) == 1  # tiny grid: no batching
    assert _auto_chunk(10_000, 4) == MAX_CHUNK  # huge grid: capped
    assert 1 <= _auto_chunk(500, 4) <= MAX_CHUNK


def test_chunk_validation():
    spec = small_spec()
    with pytest.raises(ValueError, match="chunk"):
        list(iter_campaign(spec, workers=2, chunk=0))


def test_execute_chunk_preserves_run_order():
    spec = small_spec()
    runs = spec.expand()[:4]
    rows = execute_chunk(runs)
    assert [row["run_id"] for row in rows] == [run.run_id for run in runs]


@pytest.mark.parametrize("chunk", [1, 3, 100])
def test_chunked_rows_match_inline(chunk):
    spec = small_spec()
    inline = sorted(
        iter_campaign(spec, workers=1), key=lambda row: row["run_id"]
    )
    chunked = sorted(
        iter_campaign(spec, workers=2, chunk=chunk),
        key=lambda row: row["run_id"],
    )
    assert chunked == inline


def test_small_window_shrinks_chunk_not_parallelism():
    """A caller-fixed window smaller than the chunk still fills the pool:
    chunks are clamped to the per-worker share of the window instead of one
    oversized future monopolizing it."""
    spec = small_spec()
    rows = sorted(
        iter_campaign(spec, workers=2, window=2, chunk=100),
        key=lambda row: row["run_id"],
    )
    inline = sorted(
        iter_campaign(spec, workers=1), key=lambda row: row["run_id"]
    )
    assert rows == inline


def test_chunked_dispatch_respects_skip_and_progress():
    spec = small_spec()
    skip = {0, 3, 5}
    seen = []
    rows = list(
        iter_campaign(
            spec,
            workers=2,
            chunk=2,
            skip_run_ids=skip,
            progress=lambda done, total: seen.append((done, total)),
        )
    )
    assert {row["run_id"] for row in rows} == set(range(spec.total_runs)) - skip
    # Progress counts skipped runs as already completed.
    assert seen[0][0] == len(skip) + 1
    assert seen[-1] == (spec.total_runs, spec.total_runs)


def test_resolve_memo_shares_and_replays():
    model = FaultModel(4, 1, 0)
    first = _resolve_algorithm_memo("pbft", model)
    assert _resolve_algorithm_memo("pbft", model) is first
    with pytest.raises(KeyError):
        _resolve_algorithm_memo("no-such-algorithm", model)
    with pytest.raises(KeyError):  # the memoized rejection replays too
        _resolve_algorithm_memo("no-such-algorithm", model)
