"""ScenarioSpec / CommSpec: validation, describe stability, round trips."""

import pytest

from repro.campaigns.spec import FaultSpec
from repro.eventsim.network import NetworkSpec
from repro.scenarios.spec import CommSpec, ScenarioSpec, split_values
from repro.core.types import FaultModel


class TestCommSpec:
    def test_defaults_are_reliable(self):
        comm = CommSpec()
        assert comm.kind == "reliable"
        assert comm.describe() == ""

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown communication kind"):
            CommSpec(kind="wormhole")

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            CommSpec(kind="good-bad", schedule="sometimes")

    def test_unknown_bad_behavior_rejected(self):
        with pytest.raises(ValueError, match="unknown bad behaviour"):
            CommSpec(kind="good-bad", bad="gremlins")

    def test_drop_prob_bounds(self):
        with pytest.raises(ValueError, match="drop_prob"):
            CommSpec(kind="lossy", drop_prob=1.5)

    def test_describe_distinguishes_variants(self):
        variants = [
            CommSpec(kind="lossy", drop_prob=0.3),
            CommSpec(kind="lossy", drop_prob=0.4),
            CommSpec(kind="async-prel"),
            CommSpec(kind="silent"),
            CommSpec(kind="good-bad", schedule="after", good_from=5),
            CommSpec(kind="good-bad", schedule="after", good_from=6),
            CommSpec(kind="good-bad", schedule="after", good_from=5,
                     bad="partition"),
            CommSpec(kind="good-bad", schedule="after", good_from=5,
                     bad="silence"),
            CommSpec(kind="good-bad", schedule="alternating", good_len=2,
                     bad_len=1),
            CommSpec(kind="good-bad", schedule="windows",
                     windows=((3, 5), (9, 12))),
        ]
        described = {comm.describe() for comm in variants}
        assert len(described) == len(variants)

    def test_partition_groups_never_alias(self):
        """Multi-digit pids must not collapse two partitions into one
        coordinate string (seed derivation hashes it)."""
        a = CommSpec(kind="good-bad", bad="partition", groups=((0, 1), (12,)))
        b = CommSpec(kind="good-bad", bad="partition", groups=((0, 1), (1, 2)))
        assert a.describe() != b.describe()

    def test_lists_frozen_to_tuples(self):
        comm = CommSpec(kind="good-bad", schedule="windows",
                        windows=[[3, 5]], groups=[[0, 1], [2, 3]])
        assert comm.windows == ((3, 5),)
        assert comm.groups == ((0, 1), (2, 3))
        hash(comm)  # stays usable as a frozen coordinate

    def test_empty_windows_list_frozen_too(self):
        # Regression: JSON loaders hand in ``windows=[]`` (the empty
        # tuple's round-trip), which must freeze like any other list or
        # the spec becomes unhashable and equal-looking specs diverge.
        comm = CommSpec(windows=[])
        assert comm.windows == ()
        assert comm == CommSpec()
        hash(comm)


class TestScenarioSpec:
    def test_byzantine_placement_cycles_strategies(self):
        spec = ScenarioSpec(byzantine=("a", "b"))
        placement = spec.byzantine_map(FaultModel(9, 3, 0))
        assert placement == {8: "a", 7: "b", 6: "a"}

    def test_byzantine_count_limits_slots(self):
        spec = ScenarioSpec(byzantine=("a",), byzantine_count=1)
        assert spec.byzantine_map(FaultModel(9, 3, 0)) == {8: "a"}

    def test_count_without_strategies_rejected(self):
        with pytest.raises(ValueError, match="byzantine_count"):
            ScenarioSpec(byzantine_count=2)

    def test_crash_validation(self):
        with pytest.raises(ValueError, match="crashes"):
            ScenarioSpec(crashes=-2)
        with pytest.raises(ValueError, match="crash_round"):
            ScenarioSpec(crashes=1, crash_round=0)

    def test_mapping_round_trip(self):
        spec = ScenarioSpec(
            name="rt",
            byzantine=("equivocator", "silent"),
            byzantine_count=2,
            crashes=1,
            crash_round=3,
            clean=False,
            comm=CommSpec(kind="good-bad", schedule="windows",
                          windows=((2, 4),), bad="partition",
                          groups=((0, 1), (2, 3))),
            timing=NetworkSpec(gst=5.0),
            max_phases=20,
        )
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_mapping_survives_json(self):
        import json

        spec = ScenarioSpec(
            byzantine=("silent",),
            comm=CommSpec(kind="good-bad", good_from=4,
                          windows=((1, 2),), groups=((0,), (1, 2))),
        )
        rehydrated = ScenarioSpec.from_mapping(
            json.loads(json.dumps(spec.to_mapping()))
        )
        assert rehydrated == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            ScenarioSpec.from_mapping({"typo": 1})


class TestLegacyDescribeStability:
    """Converted legacy cells must keep their exact coordinate strings —
    campaign seed derivation hashes them."""

    @pytest.mark.parametrize(
        "fault",
        [
            FaultSpec(),
            FaultSpec(byzantine="silent"),
            FaultSpec(crashes=-1),
            FaultSpec(byzantine="noise", crashes=2, crash_round=3, clean=False),
        ],
    )
    def test_fault_strings_identical(self, fault):
        scenario = ScenarioSpec.from_legacy(fault)
        assert scenario.describe_fault() == fault.describe()

    def test_network_string_identical(self):
        network = NetworkSpec(gst=4.0, pre_gst_delay_prob=0.6)
        scenario = ScenarioSpec.from_legacy(FaultSpec(), network)
        assert scenario.describe_network() == network.describe()


def test_split_values_skips_byzantine():
    model = FaultModel(4, 1, 0)
    values = split_values(model, {3: "equivocator"})
    assert values == {0: "v0", 1: "v1", 2: "v0"}
    uniform = split_values(model, {}, split=False)
    assert set(uniform.values()) == {"v"}
