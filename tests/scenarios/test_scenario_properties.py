"""Property suite: every registered scenario preserves the paper's safety
invariants on both engines, wherever the configuration hosts it."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.types import FaultModel
from repro.scenarios import (
    SCENARIO_REGISTRY,
    ScenarioInapplicable,
    run_scenario,
)

#: Models with room for every fault shape the registry uses (b ≥ 1, f ≥ 1).
MODELS = {
    # class → (n, b, f) satisfying its Table-1 bound with slack
    AlgorithmClass.CLASS_2: FaultModel(8, 1, 1),
    AlgorithmClass.CLASS_3: FaultModel(7, 1, 1),
}


@pytest.mark.parametrize("engine", ["lockstep", "timed"])
@pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
@pytest.mark.parametrize("cls", sorted(MODELS, key=lambda c: c.value))
def test_safety_invariants_hold(cls, name, engine):
    model = MODELS[cls]
    params = build_class_parameters(cls, model)
    try:
        outcome = run_scenario(name, params, engine=engine, rng=13)
    except ScenarioInapplicable:
        pytest.skip(f"{name} not hosted by {engine} under {model}")
    report = outcome.invariant_report()
    # Safety must hold in every environment — including those (lossy,
    # silent minority) where liveness legitimately may not.
    assert report["agreement"] is True
    assert report["validity"] is True
    assert report["unanimity"] is True


@pytest.mark.parametrize("engine", ["lockstep", "timed"])
@pytest.mark.parametrize(
    "name",
    [
        "fault-free", "worst_case", "partition_heal", "async_then_sync",
        "silent_minority", "crash_storm",
    ],
)
def test_liveness_in_eventually_good_scenarios(name, engine):
    """Scenarios with an eventually-good suffix must also terminate."""
    model = FaultModel(7, 1, 1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_scenario(name, params, engine=engine, rng=13)
    assert outcome.all_correct_decided
    assert outcome.invariant_report()["termination"] is True
