"""Scenario-compilation parity: the new layer reproduces legacy outcomes.

The pre-scenario ``AdversaryScenario`` factories assembled policies by hand
and ran them through ``run_consensus``.  Each case below rebuilds that
legacy execution verbatim (hand-built policy, same placement, same seed)
and asserts the preset — now a thin ``ScenarioSpec`` lookup compiled
through the unified kernel — produces the identical outcome.
"""

import random

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.run import run_consensus
from repro.core.types import FaultModel
from repro.faults.adversary import build_scenario
from repro.faults.crash import CrashSchedule
from repro.rounds.policies import (
    GoodBadPolicy,
    ReliablePolicy,
    partition_behavior,
)
from repro.rounds.schedule import GoodBadSchedule


def outcome_signature(outcome):
    """Everything the legacy sweeps ever read off a scenario outcome."""
    return (
        {pid: d.value for pid, d in outcome.decisions.items()},
        {pid: d.round for pid, d in outcome.decisions.items()},
        outcome.agreement_holds,
        outcome.all_correct_decided,
        outcome.rounds_to_last_decision,
        outcome.result.rounds_executed,
    )


def legacy_values(model, byzantine):
    return {
        pid: f"v{pid % 2}"
        for pid in model.processes
        if pid not in byzantine
    }


@pytest.fixture
def params7():
    return build_class_parameters(AlgorithmClass.CLASS_3, FaultModel(7, 2, 0))


class TestPresetParity:
    def test_worst_case(self, params7):
        model = params7.model
        strategies = [
            "equivocator", "high-ts-liar", "fake-history-liar", "adaptive-liar",
        ]
        byzantine = {
            model.n - 1 - i: strategies[i % len(strategies)]
            for i in range(model.b)
        }
        values = legacy_values(model, byzantine)
        legacy = run_consensus(
            params7, values, byzantine=byzantine, policy=ReliablePolicy(),
            max_phases=15,
        )
        scenario = build_scenario("worst_case", model)
        assert scenario.byzantine == byzantine
        modern = scenario.run(params7, values)
        assert outcome_signature(modern) == outcome_signature(legacy)

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("heal_round", [5, 7])
    def test_partition_heal(self, params7, heal_round, seed):
        model = params7.model
        half = model.n // 2
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(heal_round),
            bad_behavior=partition_behavior(
                [range(half), range(half, model.n)]
            ),
            rng=random.Random(seed),
        )
        byzantine = {model.n - 1: "equivocator"}
        values = legacy_values(model, byzantine)
        legacy = run_consensus(
            params7, values, byzantine=byzantine, policy=policy,
            max_phases=heal_round + 8,
        )
        scenario = build_scenario(
            "partition_heal", model, heal_round=heal_round, seed=seed
        )
        modern = scenario.run(params7, values)
        assert outcome_signature(modern) == outcome_signature(legacy)

    @pytest.mark.parametrize("seed", [0, 1, 4])
    def test_async_then_sync_random_loss_stream(self, params7, seed):
        """The bad-period drop draws must consume the seeded RNG exactly as
        the legacy default behaviour did."""
        model = params7.model
        gst_round = 9
        policy = GoodBadPolicy(
            GoodBadSchedule.good_after(gst_round), rng=random.Random(seed)
        )
        byzantine = {model.n - 1: "adaptive-liar"}
        values = legacy_values(model, byzantine)
        legacy = run_consensus(
            params7, values, byzantine=byzantine, policy=policy,
            max_phases=gst_round + 8,
        )
        scenario = build_scenario(
            "async_then_sync", model, gst_round=gst_round, seed=seed
        )
        modern = scenario.run(params7, values)
        assert outcome_signature(modern) == outcome_signature(legacy)

    def test_silent_minority(self):
        model = FaultModel(5, 1, 0)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        byzantine = {model.n - 1 - i: "silent" for i in range(model.b)}
        values = legacy_values(model, byzantine)
        legacy = run_consensus(
            params, values, byzantine=byzantine, policy=ReliablePolicy(),
            max_phases=15,
        )
        modern = build_scenario("silent_minority", model).run(params, values)
        assert outcome_signature(modern) == outcome_signature(legacy)

    def test_crash_storm(self):
        model = FaultModel(5, 0, 2)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        values = legacy_values(model, {})
        legacy = run_consensus(
            params,
            values,
            policy=ReliablePolicy(),
            crash_schedule=CrashSchedule.crash_first_f(model, 1, clean=False),
            max_phases=15,
        )
        modern = build_scenario("crash_storm", model).run(params, values)
        assert outcome_signature(modern) == outcome_signature(legacy)
