"""Scenario compilation onto both schedulers."""

import pytest

from repro.core.classification import AlgorithmClass, build_class_parameters
from repro.core.types import FaultModel
from repro.engine.scheduler import LockstepScheduler, TimedScheduler
from repro.rounds.policies import (
    AsyncPrelPolicy,
    GoodBadPolicy,
    LossyPolicy,
    ReliablePolicy,
    SilentPolicy,
)
from repro.scenarios import (
    ScenarioInapplicable,
    ScenarioSpec,
    SCENARIO_REGISTRY,
    compile_scenario,
    get_scenario,
    run_scenario,
)
from repro.scenarios.spec import CommSpec


@pytest.fixture
def pbft_params(pbft_model):
    return build_class_parameters(AlgorithmClass.CLASS_3, pbft_model)


class TestLockstepTargets:
    @pytest.mark.parametrize(
        "comm,policy_type",
        [
            (CommSpec(), ReliablePolicy),
            (CommSpec(kind="good-bad", good_from=5), GoodBadPolicy),
            (CommSpec(kind="lossy"), LossyPolicy),
            (CommSpec(kind="async-prel"), AsyncPrelPolicy),
            (CommSpec(kind="silent"), SilentPolicy),
        ],
    )
    def test_comm_kind_maps_to_policy(self, pbft_model, comm, policy_type):
        compiled = compile_scenario(
            ScenarioSpec(comm=comm), pbft_model, "lockstep", 1
        )
        assert isinstance(compiled.scheduler, LockstepScheduler)
        assert isinstance(compiled.scheduler.policy, policy_type)

    def test_byzantine_and_crashes_resolved(self):
        model = FaultModel(7, 1, 2)
        spec = ScenarioSpec(byzantine=("silent",), crashes=2, crash_round=3)
        compiled = compile_scenario(spec, model, "lockstep", 1)
        assert compiled.byzantine == {6: "silent"}
        assert compiled.crash_schedule.doomed == frozenset({0, 1})


class TestTimedTargets:
    def test_reliable_has_no_filter(self, pbft_model):
        compiled = compile_scenario(
            ScenarioSpec(), pbft_model, "timed", 1
        )
        assert isinstance(compiled.scheduler, TimedScheduler)

    def test_partition_hosted_on_timed(self, pbft_model, pbft_params):
        spec = get_scenario("partition_heal")
        outcome = run_scenario(spec, pbft_params, engine="timed", rng=3)
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        # Decisions cannot land before the heal round.
        assert outcome.rounds_to_last_decision >= spec.comm.good_from

    def test_crash_script_hosted_on_timed(self):
        model = FaultModel(5, 0, 2)
        params = build_class_parameters(AlgorithmClass.CLASS_2, model)
        outcome = run_scenario("crash_storm", params, engine="timed", rng=3)
        assert outcome.agreement_holds
        assert outcome.all_correct_decided
        assert len(outcome.decisions) == 3  # the two crashed never decide

    def test_async_prel_inapplicable_on_timed(self, pbft_model):
        with pytest.raises(ScenarioInapplicable, match="lockstep engine only"):
            compile_scenario(
                ScenarioSpec(comm=CommSpec(kind="async-prel")),
                pbft_model,
                "timed",
                1,
            )


class TestInapplicability:
    def test_byzantine_needs_b(self):
        with pytest.raises(ScenarioInapplicable, match="b = 0"):
            compile_scenario(
                ScenarioSpec(byzantine=("silent",)), FaultModel(3, 0, 1)
            )

    def test_crashes_bounded_by_f(self):
        with pytest.raises(ScenarioInapplicable, match="crashes 2 > f = 1"):
            compile_scenario(
                ScenarioSpec(crashes=2), FaultModel(3, 0, 1)
            )

    def test_byzantine_count_bounded_by_b(self):
        with pytest.raises(ScenarioInapplicable, match="Byzantine"):
            compile_scenario(
                ScenarioSpec(byzantine=("silent",), byzantine_count=2),
                FaultModel(4, 1, 0),
            )

    def test_unknown_engine_is_value_error(self, pbft_model):
        with pytest.raises(ValueError, match="unknown engine"):
            compile_scenario(ScenarioSpec(), pbft_model, "warp")


class TestDeterminism:
    @pytest.mark.parametrize("engine", ["lockstep", "timed"])
    @pytest.mark.parametrize("name", sorted(SCENARIO_REGISTRY))
    def test_same_seed_same_outcome(self, engine, name, pbft_params):
        # (crash_storm degrades to zero crashes on the f = 0 pbft model.)
        first = run_scenario(name, pbft_params, engine=engine, rng=11)
        second = run_scenario(name, pbft_params, engine=engine, rng=11)
        assert first.decided_value_by_process == second.decided_value_by_process
        assert first.rounds_executed == second.rounds_executed
        assert first.messages_delivered == second.messages_delivered

    def test_seed_moves_random_loss(self, pbft_params):
        outcomes = {
            run_scenario(
                "async_then_sync", pbft_params, rng=seed
            ).messages_delivered
            for seed in range(6)
        }
        assert len(outcomes) > 1


class TestMemoization:
    def test_schedule_lookups_memoized(self):
        calls = []

        # A good_from no other test (or fuzzed candidate) uses: the
        # schedule memo is process-wide, so a shared spec would arrive
        # here with its round cache already warm.
        comm = CommSpec(kind="good-bad", schedule="after", good_from=41)
        from repro.scenarios.compile import _memoized_schedule

        schedule = _memoized_schedule(comm)
        # Instrument the base predicate through the memo: repeated lookups
        # of one round must not grow the underlying closure's cache.
        memo = schedule._is_good.__closure__
        assert memo is not None
        for _ in range(3):
            calls.append(schedule.is_good(2))
        assert calls == [False, False, False]
        (memo_dict,) = [
            cell.cell_contents
            for cell in memo
            if isinstance(cell.cell_contents, dict)
        ]
        assert set(memo_dict) == {2}

    def test_partition_edges_flattened(self):
        from repro.scenarios.compile import _partition_edges

        edges = _partition_edges(((0, 1), (2, 3)))
        assert (0, 1) in edges and (1, 0) in edges
        assert (0, 2) not in edges and (2, 1) not in edges
