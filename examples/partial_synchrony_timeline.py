#!/usr/bin/env python3
"""Partial synchrony in action: decision latency as a function of the GST.

We run PBFT over the discrete-event runtime with increasing global
stabilization times and plot (in ASCII) the simulated time to decision —
the classic "nothing happens until the network stabilizes, then one clean
phase suffices" curve.  We also compare the round-structure cost of the two
Pcons implementations (authenticated vs signature-free).

Run:  python examples/partial_synchrony_timeline.py
"""

from repro.algorithms import build_pbft
from repro.eventsim import (
    PartialSynchronyNetwork,
    UniformLatency,
    run_timed_consensus,
)
from repro.network import (
    AuthenticatedCoordinatorEcho,
    SignatureFreeCoordinatorEcho,
    run_with_pcons_stack,
)


def main():
    spec = build_pbft(4)
    values = {0: "a", 1: "b", 2: "a"}

    print("PBFT (n=4, b=1, equivocating adversary) vs the GST:\n")
    print("  GST   | time to decision")
    print("  ------+-----------------")
    for gst in (0.0, 10.0, 25.0, 50.0):
        network = PartialSynchronyNetwork(
            UniformLatency(0.5, 2.0),
            gst=gst,
            delta=2.0,
            pre_gst_delay_prob=0.8,
            seed=42,
        )
        outcome = run_timed_consensus(
            spec.parameters,
            values,
            network,
            round_duration=2.5,
            byzantine={3: "equivocator"},
            max_phases=40,
        )
        assert outcome.agreement_holds
        when = outcome.last_decision_time
        bar = "#" * int((when or 0) / 2)
        print(f"  {gst:5.1f} | {when:7.1f}  {bar}")

    print(
        "\nBefore the GST messages miss their round deadlines and phases "
        "starve; the first clean phase after stabilization decides."
    )

    print("\nImplemented Pcons cost (Section 2.2), same consensus instance:")
    model = spec.parameters.model
    for wic_cls, label in (
        (AuthenticatedCoordinatorEcho, "authenticated (2 extra rounds)"),
        (SignatureFreeCoordinatorEcho, "signature-free (3 extra rounds)"),
    ):
        outcome = run_with_pcons_stack(
            spec.parameters,
            values,
            wic_cls(model),
            byzantine={3: "equivocator"},
        )
        print(
            f"  {label:34s}: {outcome.micro_rounds_used} wire rounds, "
            f"{outcome.messages_sent} messages"
        )


if __name__ == "__main__":
    main()
