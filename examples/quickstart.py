#!/usr/bin/env python3
"""Quickstart: one consensus instance per class, with and without faults.

Run:  python examples/quickstart.py
"""

from repro import (
    AlgorithmClass,
    FaultModel,
    build_class_parameters,
    run_consensus,
)


def show(title, outcome):
    decided = {pid: d.value for pid, d in sorted(outcome.decisions.items())}
    print(f"  {title}")
    print(f"    decisions : {decided}")
    print(f"    agreement : {outcome.agreement_holds}")
    print(f"    phases    : {outcome.phases_to_last_decision}")
    print(f"    rounds    : {outcome.rounds_to_last_decision}")


def main():
    print("=== Class 1 (FLAG=*, 2 rounds/phase, n > 5b) — n=6, b=1 ===")
    model = FaultModel(n=6, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_1, model)
    outcome = run_consensus(
        params,
        {0: "apple", 1: "apple", 2: "banana", 3: "banana", 4: "apple"},
        byzantine={5: "equivocator"},
    )
    show("equivocating Byzantine process 5", outcome)

    print("\n=== Class 2 (FLAG=φ, 3 rounds/phase, n > 4b) — n=5, b=1 (MQB) ===")
    model = FaultModel(n=5, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_2, model)
    outcome = run_consensus(
        params,
        {0: "x", 1: "y", 2: "x", 3: "y"},
        byzantine={4: "high-ts-liar"},
    )
    show("timestamp-forging Byzantine process 4", outcome)

    print("\n=== Class 3 (FLAG=φ, history, n > 3b) — n=4, b=1 (PBFT) ===")
    model = FaultModel(n=4, b=1)
    params = build_class_parameters(AlgorithmClass.CLASS_3, model)
    outcome = run_consensus(
        params,
        {0: "commit", 1: "abort", 2: "commit"},
        byzantine={3: "fake-history-liar"},
    )
    show("history-forging Byzantine process 3", outcome)

    print("\n=== Benign crash faults — n=3, f=1 (Paxos territory) ===")
    from repro.faults.crash import CrashSchedule

    model = FaultModel(n=3, f=1)
    params = build_class_parameters(AlgorithmClass.CLASS_2, model)
    outcome = run_consensus(
        params,
        {0: "a", 1: "b", 2: "c"},
        crash_schedule=CrashSchedule.crash_first_f(model, round_number=1),
    )
    show("process 0 crashes in round 1", outcome)


if __name__ == "__main__":
    main()
