#!/usr/bin/env python3
"""Ben-Or randomized binary consensus under a Prel-only adversary (Section 6).

No good periods, no leader, no failure detector: in every round the
adversary delivers an arbitrary subset of at least n − b − f messages to
each correct process.  Deterministic algorithms cannot terminate in this
model (FLP); Ben-Or's coin makes the probability of perpetual disagreement
zero.  We run many seeds and show the distribution of phases-to-decision.

Run:  python examples/randomized_ben_or.py
"""

from collections import Counter

from repro.algorithms import build_ben_or
from repro.core.randomized import run_randomized_consensus


def run_distribution(spec, values, byzantine, seeds, max_phases=300):
    phases = Counter()
    for seed in seeds:
        outcome = run_randomized_consensus(
            spec.parameters,
            values,
            seed=seed,
            byzantine=byzantine,
            max_phases=max_phases,
        )
        assert outcome.agreement_holds, f"seed {seed}: agreement violated!"
        if outcome.all_correct_decided:
            phases[outcome.phases_to_last_decision] += 1
        else:
            phases["> max"] += 1
    return phases


def show(title, phases, total):
    print(f"\n{title}")
    for key in sorted(phases, key=str):
        bar = "#" * phases[key]
        print(f"  {key!s:>5} phase(s): {phases[key]:3d}/{total}  {bar}")


def main():
    seeds = range(30)

    # n = 3 is the tightest benign configuration: the Prel adversary can
    # feed different correct processes disjoint message subsets, so initial
    # phases genuinely split and the coin has to do its work.
    spec = build_ben_or(3)  # benign, n > 2f
    phases = run_distribution(
        spec, {0: 1, 1: 0, 2: 1}, byzantine=None, seeds=seeds
    )
    show("Benign Ben-Or, n=3, f=1, split inputs 1/0/1:", phases, len(seeds))

    spec = build_ben_or(8, b=1)  # Byzantine, n > 4b (with slack)
    phases = run_distribution(
        spec,
        {pid: pid % 2 for pid in range(7)},
        byzantine={7: "equivocator"},
        seeds=seeds,
    )
    show(
        "Byzantine Ben-Or, n=8, b=1, equivocating adversary:", phases, len(seeds)
    )

    print(
        "\nEvery run agrees; phases-to-decision varies with the coin — "
        "termination with probability 1, as Section 6 requires."
    )


if __name__ == "__main__":
    main()
