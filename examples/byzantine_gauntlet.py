#!/usr/bin/env python3
"""The Byzantine gauntlet: every attack strategy against every Byzantine
algorithm at its minimal resilience, plus the new MQB in the n=5, b=1 gap
where FaB Paxos cannot exist.

Run:  python examples/byzantine_gauntlet.py
"""

from repro.algorithms import build_fab_paxos, build_mqb, build_pbft
from repro.analysis.reporting import format_table
from repro.core.run import STRATEGY_REGISTRY


def main():
    specs = [build_pbft(4), build_mqb(5), build_fab_paxos(6)]
    rows = []
    for spec in specs:
        model = spec.parameters.model
        values = {pid: f"v{pid % 2}" for pid in range(model.n - 1)}
        for strategy in sorted(STRATEGY_REGISTRY):
            outcome = spec.run(values, byzantine={model.n - 1: strategy})
            rows.append(
                [
                    spec.name,
                    f"n={model.n}, b={model.b}",
                    strategy,
                    "ok" if outcome.agreement_holds else "VIOLATED",
                    "ok" if outcome.all_correct_decided else "STUCK",
                    outcome.phases_to_last_decision,
                ]
            )
    print(
        format_table(
            ["algorithm", "model", "attack", "agreement", "termination", "phases"],
            rows,
        )
    )

    print("\nThe n=5, b=1 gap (4b < n ≤ 5b): MQB exists, FaB Paxos cannot:")
    try:
        build_fab_paxos(5, b=1)
    except ValueError as exc:
        print(f"  build_fab_paxos(5, b=1) → {exc}")
    spec = build_mqb(5, b=1)
    print(f"  build_mqb(5, b=1)       → TD={spec.parameters.threshold}, "
          f"state={'/'.join(spec.parameters.state_footprint)} (no history!)")


if __name__ == "__main__":
    main()
