#!/usr/bin/env python3
"""The Byzantine gauntlet, on the declarative scenario layer.

Every attack strategy is expressed as an inline
:class:`~repro.scenarios.ScenarioSpec` and compiled through
:func:`~repro.scenarios.run_scenario` against every Byzantine algorithm at
its minimal resilience — the same compiler the campaign engine and the CLI
use, so each cell here is one ``repro scenario run`` away.  The registered
presets then run on *both* engines, and the new MQB is shown in the
n=5, b=1 gap where FaB Paxos cannot exist.

Run:  python examples/byzantine_gauntlet.py
"""

from repro.algorithms import build_fab_paxos, build_mqb, build_pbft
from repro.analysis.reporting import format_table
from repro.faults.registry import STRATEGY_REGISTRY
from repro.scenarios import ScenarioSpec, list_scenarios, run_scenario


def attack_rows():
    """Every named strategy as a one-slot scenario, per algorithm."""
    rows = []
    for spec in (build_pbft(4), build_mqb(5), build_fab_paxos(6)):
        model = spec.parameters.model
        for strategy in sorted(STRATEGY_REGISTRY):
            scenario = ScenarioSpec(
                name=f"attack-{strategy}", byzantine=(strategy,)
            )
            outcome = run_scenario(
                scenario, spec.parameters, config=spec.config, rng=0
            )
            rows.append(
                [
                    spec.name,
                    f"n={model.n}, b={model.b}",
                    strategy,
                    "ok" if outcome.agreement_holds else "VIOLATED",
                    "ok" if outcome.all_correct_decided else "STUCK",
                    outcome.phases_to_last_decision,
                ]
            )
    return rows


def preset_rows():
    """The registered scenario catalogue against PBFT, on both engines."""
    spec = build_pbft(4)
    rows = []
    for scenario in list_scenarios():
        for engine in ("lockstep", "timed"):
            outcome = run_scenario(
                scenario, spec.parameters, config=spec.config,
                engine=engine, rng=7,
            )
            rows.append(
                [
                    scenario.name,
                    engine,
                    "ok" if outcome.agreement_holds else "VIOLATED",
                    "ok" if outcome.all_correct_decided else "STUCK",
                    outcome.rounds_executed,
                ]
            )
    return rows


def main():
    print(
        format_table(
            ["algorithm", "model", "attack", "agreement", "termination", "phases"],
            attack_rows(),
        )
    )

    print("\nRegistered scenarios against PBFT (both engines):")
    print(
        format_table(
            ["scenario", "engine", "agreement", "termination", "rounds"],
            preset_rows(),
        )
    )

    print("\nThe n=5, b=1 gap (4b < n ≤ 5b): MQB exists, FaB Paxos cannot:")
    try:
        build_fab_paxos(5, b=1)
    except ValueError as exc:
        print(f"  build_fab_paxos(5, b=1) → {exc}")
    spec = build_mqb(5, b=1)
    print(f"  build_mqb(5, b=1)       → TD={spec.parameters.threshold}, "
          f"state={'/'.join(spec.parameters.state_footprint)} (no history!)")


if __name__ == "__main__":
    main()
