#!/usr/bin/env python3
"""Tour of Table 1: every named algorithm, its class, bounds and cost.

Reproduces the paper's classification empirically: for each algorithm we
print its parameters, run it at minimal n under its worst scripted adversary
and report rounds/messages/state.

Run:  python examples/classification_tour.py
"""

from repro.algorithms import (
    build_chandra_toueg,
    build_fab_paxos,
    build_mqb,
    build_one_third_rule,
    build_paxos,
    build_pbft,
)
from repro.analysis.metrics import RunMetrics
from repro.analysis.reporting import format_table
from repro.core.classification import classify


def run_spec(spec, adversary=None):
    model = spec.parameters.model
    byzantine = {}
    honest = list(model.processes)
    if model.b > 0 and adversary:
        byzantine = {model.n - 1: adversary}
        honest = honest[:-1]
    values = {pid: f"v{pid % 2}" for pid in honest}
    outcome = spec.run(values, byzantine=byzantine)
    return RunMetrics.from_outcome(outcome), outcome


def main():
    specs = [
        (build_one_third_rule(4), None),
        (build_fab_paxos(6), "equivocator"),
        (build_mqb(5), "high-ts-liar"),
        (build_paxos(3), None),
        (build_chandra_toueg(3), None),
        (build_pbft(4), "fake-history-liar"),
    ]
    rows = []
    for spec, adversary in specs:
        metrics, outcome = run_spec(spec, adversary)
        params = spec.parameters
        cls = classify(params)
        rows.append(
            [
                spec.name,
                f"class {cls.value}" if cls else "—",
                params.model.describe(),
                params.threshold,
                str(params.flag),
                "/".join(params.state_footprint),
                params.rounds_per_phase,
                metrics.rounds_to_last_decision,
                metrics.messages_sent,
                "yes" if outcome.agreement_holds else "NO",
            ]
        )
    print(
        format_table(
            [
                "algorithm",
                "class",
                "model",
                "TD",
                "FLAG",
                "state",
                "rounds/phase",
                "rounds to decide",
                "messages",
                "agreement",
            ],
            rows,
        )
    )
    print(
        "\nTable 1 of the paper, reproduced: class 1 trades resilience "
        "(n > 5b) for speed (2 rounds) and tiny state; class 3 reaches "
        "optimal resilience (n > 3b) at the cost of the unbounded history."
    )


if __name__ == "__main__":
    main()
