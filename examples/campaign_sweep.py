#!/usr/bin/env python3
"""Campaign engine tour: declare a grid, run it in parallel, aggregate.

Run:  PYTHONPATH=src python examples/campaign_sweep.py
"""

from repro.campaigns import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    FaultSpec,
    NetworkSpec,
    format_report,
    run_campaign,
    summarize,
    write_rows,
)


def main():
    # 1. Declare a sweep: every axis below is crossed into a grid.
    spec = CampaignSpec(
        name="frontier-tour",
        algorithms=("pbft", "mqb", "fab-paxos"),
        models=((4, 1, 0), (5, 1, 0), (6, 1, 0)),
        engines=("lockstep", "timed"),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator")),
        networks=(NetworkSpec(gst=5.0, pre_gst_delay_prob=0.6),),
        repetitions=3,
        seed=2026,
    )
    print(f"campaign {spec.name!r}: {spec.total_runs} runs")

    # 2. Execute on a process pool.  Per-run seeds are derived from the
    #    campaign seed and each run's coordinates, so any worker count
    #    produces byte-identical results.
    rows = run_campaign(spec, workers=4)
    path = write_rows("frontier-tour.results.jsonl", rows)
    print(f"wrote {len(rows)} rows to {path}\n")

    # 3. Aggregate: per-(algorithm, n, b, f, engine, fault) summaries.
    #    Below-bound cells (fab-paxos at n=4, mqb at n=4, ...) show up as
    #    `inadm` instead of executing.
    print(format_report(summarize(rows)))

    # 4. The same machinery powers the built-in paper campaigns:
    print("\nbuilt-ins:", ", ".join(sorted(BUILTIN_CAMPAIGNS)))


if __name__ == "__main__":
    main()
