#!/usr/bin/env python3
"""Campaign engine tour: declare a grid, run it in parallel, aggregate.

Run:  PYTHONPATH=src python examples/campaign_sweep.py
"""

from repro.campaigns import (
    BUILTIN_CAMPAIGNS,
    CampaignSpec,
    FaultSpec,
    NetworkSpec,
    ResultStore,
    SummaryFold,
    checkpoint_path,
    finalize_checkpoint,
    format_report,
    iter_campaign,
)


def main():
    # 1. Declare a sweep: every axis below is crossed into a grid.
    spec = CampaignSpec(
        name="frontier-tour",
        algorithms=("pbft", "mqb", "fab-paxos"),
        models=((4, 1, 0), (5, 1, 0), (6, 1, 0)),
        engines=("lockstep", "timed"),
        faults=(FaultSpec(), FaultSpec(byzantine="equivocator")),
        networks=(NetworkSpec(gst=5.0, pre_gst_delay_prob=0.6),),
        repetitions=3,
        seed=2026,
    )
    print(f"campaign {spec.name!r}: {spec.total_runs} runs")

    # 2. Stream the grid through a process pool: rows are yielded as they
    #    complete (bounded in-flight window, memory O(window) not O(grid))
    #    and appended to a crash-safe checkpoint one flush at a time.  The
    #    per-cell report folds in the same pass.  Per-run seeds are derived
    #    from the campaign seed and each run's coordinates, so any worker
    #    count produces a byte-identical final file — and an interrupted
    #    sweep resumes from the checkpoint (`repro campaign run --resume`).
    out = "frontier-tour.results.jsonl"
    fold = SummaryFold()
    # This demo always starts fresh: drop any checkpoint a previously
    # interrupted run left behind (appending to it would let its stale
    # rows win at finalize).  A real resuming caller instead gates on
    # `validate_resume(spec, checkpoint)` and passes the returned run_ids
    # as `skip_run_ids` — what `repro campaign run --resume` does.
    checkpoint_path(out).unlink(missing_ok=True)
    with ResultStore(checkpoint_path(out)).open_append() as sink:
        for row in iter_campaign(spec, workers=4):
            sink.append(row)
            fold.add(row)
    path = finalize_checkpoint(checkpoint_path(out), out)
    print(f"wrote {spec.total_runs} rows to {path}\n")

    # 3. Aggregate: per-(algorithm, n, b, f, engine, fault) summaries.
    #    Below-bound cells (fab-paxos at n=4, mqb at n=4, ...) show up in
    #    the `inadm` column (unhostable scenarios separately as `inappl`)
    #    instead of executing.
    print(format_report(fold.summaries()))

    # 4. The same machinery powers the built-in paper campaigns:
    print("\nbuilt-ins:", ", ".join(sorted(BUILTIN_CAMPAIGNS)))


if __name__ == "__main__":
    main()
