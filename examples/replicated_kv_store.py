#!/usr/bin/env python3
"""State machine replication: a PBFT-replicated key-value store, served.

Section 5.3 of the paper notes that Paxos and PBFT solve a *sequence* of
consensus instances (state machine replication).  This example serves a
key-value store over four replicas (one Byzantine) through the batched,
pipelined serving loop: explicit client commands arrive on a timeline,
slots decide batches of them concurrently, and every honest replica
applies the committed log in order and reaches the same state.

Run:  python examples/replicated_kv_store.py
"""

from dataclasses import replace

from repro.smr import ServeConfig, run_serve

#: (arrival_time, command) — two clients' requests interleaved in time.
ARRIVALS = [
    (0.5, ("set", "alice", 100)),
    (0.6, ("set", "bob", 50)),
    (1.1, ("set", "alice", 75)),   # overwrite
    (1.7, ("del", "bob")),
    (2.0, ("set", "carol", 10)),
    (2.2, ("set", "dave", 33)),
    (2.3, ("del", "dave")),
]


def main():
    config = ServeConfig(
        algorithm="pbft",
        n=4,
        b=1,
        scenario="worst_case",   # places one attacking Byzantine replica
        batch=3,                 # up to three commands decide per slot
        depth=2,                 # two slots in flight at once
        seed=7,
    )

    print("Serving client commands (one replica is Byzantine)…")
    report = run_serve(config, arrivals=ARRIVALS)

    print(f"\ncommands offered     : {report.offered}")
    print(f"commands committed   : {report.committed_commands} "
          f"in {report.slots_committed} slot(s) "
          f"(mean batch {report.mean_batch_size:.2f})")
    print(f"consensus retries    : {report.retries} "
          f"(Byzantine-rejected {report.rejected})")
    print(f"replica digests agree: {report.digests_agree}")
    lat = report.latency
    print(f"request latency      : p50 {lat['p50']:.2f}  "
          f"p95 {lat['p95']:.2f}  p99 {lat['p99']:.2f} "
          f"(simulated time units, arrival → in-order apply)")

    # The same workload decided one command at a time commits the same
    # log: batching and pipelining are serving optimizations, not
    # semantic changes.
    baseline = run_serve(
        replace(config, batch=1, depth=1),
        arrivals=ARRIVALS,
    )
    print(f"slot-at-a-time replay: log digests equal "
          f"{baseline.log_digest == report.log_digest}, "
          f"state digests equal {baseline.digest == report.digest}")

    assert report.digests_agree, "replicas diverged!"
    assert baseline.log_digest == report.log_digest


if __name__ == "__main__":
    main()
