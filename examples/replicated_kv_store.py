#!/usr/bin/env python3
"""State machine replication: a PBFT-replicated key-value store.

Section 5.3 of the paper notes that Paxos and PBFT solve a *sequence* of
consensus instances (state machine replication).  This example replicates a
key-value store over four replicas, one Byzantine, decides a log of client
commands slot by slot, and verifies that all honest replicas reach the same
state.

Run:  python examples/replicated_kv_store.py
"""

from repro.algorithms import build_pbft
from repro.smr import KeyValueStore, ReplicatedService


def main():
    service = ReplicatedService(
        build_pbft(4), KeyValueStore, byzantine={3: "equivocator"}
    )

    print("Submitting client commands (replica 3 is Byzantine)…")
    commands = [
        ("set", "alice", 100),
        ("set", "bob", 50),
        ("set", "alice", 75),   # overwrite
        ("del", "bob",),
        ("set", "carol", 10),
    ]
    for command in commands:
        service.submit(command)

    report = service.run_until_drained()

    print(f"\nslots committed     : {report.slots_committed}")
    print(f"phases per slot     : {report.phases_per_slot:.2f}")
    print(f"total messages      : {report.total_messages}")
    print(f"replica digests agree: {report.digests_agree}")

    print("\nCommitted log (identical at every honest replica):")
    log = next(iter(service.logs.values()))
    for entry in log.committed_prefix():
        print(f"  slot {entry.slot}: {entry.command}")

    print("\nFinal store state at each honest replica:")
    for pid, machine in sorted(service.machines.items()):
        print(
            f"  replica {pid}: alice={machine.get('alice')}, "
            f"bob={machine.get('bob')}, carol={machine.get('carol')} "
            f"(digest {machine.digest()[:12]}…)"
        )

    assert report.digests_agree, "replicas diverged!"


if __name__ == "__main__":
    main()
