"""Shim so that legacy ``setup.py develop`` / old pip+setuptools installs work.

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
